// Unit tests for the MPI layer's internal pieces: Views, matching,
// requests, reductions, topology mapping.
#include <gtest/gtest.h>

#include <cstring>

#include "mpi/comm.hpp"
#include "mpi/matcher.hpp"
#include "mpi/mpi.hpp"
#include "mpi/request.hpp"
#include "sim/engine.hpp"

namespace {

using namespace mns;
using namespace mns::mpi;

TEST(View, RealViewsCarryDataAndIdentity) {
  double buf[4] = {1, 2, 3, 4};
  const View v = View::out(buf, sizeof buf);
  EXPECT_EQ(v.bytes(), 32u);
  EXPECT_FALSE(v.synthetic());
  EXPECT_TRUE(v.writable());
  EXPECT_EQ(v.addr(), reinterpret_cast<std::uint64_t>(buf));
  const View r = View::in(buf, sizeof buf);
  EXPECT_FALSE(r.writable());
}

TEST(View, SyntheticViewsHaveNoData) {
  const View v = View::synth(0xABC, 1 << 20);
  EXPECT_TRUE(v.synthetic());
  EXPECT_EQ(v.addr(), 0xABCu);
  EXPECT_EQ(v.data(), nullptr);
}

TEST(View, CopyPayloadSkipsSynthetic) {
  double src[2] = {7, 8}, dst[2] = {0, 0};
  copy_payload(View::in(src, 16), View::synth(1, 16), 16);  // no crash
  copy_payload(View::synth(1, 16), View::out(dst, 16), 16);
  EXPECT_EQ(dst[0], 0);
  copy_payload(View::in(src, 16), View::out(dst, 16), 16);
  EXPECT_EQ(dst[1], 8);
}

TEST(Envelope, WildcardMatching) {
  const Envelope env{3, 0, 42, 100};
  EXPECT_TRUE(matches(3, 42, env));
  EXPECT_TRUE(matches(kAnySource, 42, env));
  EXPECT_TRUE(matches(3, kAnyTag, env));
  EXPECT_TRUE(matches(kAnySource, kAnyTag, env));
  EXPECT_FALSE(matches(2, 42, env));
  EXPECT_FALSE(matches(3, 41, env));
}

TEST(Matcher, PostedFifoPerMatch) {
  sim::Engine eng;
  Matcher m;
  auto req1 = std::make_shared<RequestState>(eng);
  auto req2 = std::make_shared<RequestState>(eng);
  m.post(PostedRecv{kAnySource, kAnyTag, View::synth(1, 8), req1});
  m.post(PostedRecv{kAnySource, kAnyTag, View::synth(2, 8), req2});
  const auto hit = m.match_arrival(Envelope{0, 0, 5, 8});
  ASSERT_TRUE(hit);
  EXPECT_EQ(hit->req.get(), req1.get());  // earliest posted wins
  EXPECT_EQ(m.posted_count(), 1u);
}

TEST(Matcher, TagSelectivity) {
  sim::Engine eng;
  Matcher m;
  auto req1 = std::make_shared<RequestState>(eng);
  auto req2 = std::make_shared<RequestState>(eng);
  m.post(PostedRecv{0, 7, View::synth(1, 8), req1});
  m.post(PostedRecv{0, 9, View::synth(2, 8), req2});
  const auto hit = m.match_arrival(Envelope{0, 0, 9, 8});
  ASSERT_TRUE(hit);
  EXPECT_EQ(hit->req.get(), req2.get());
  EXPECT_FALSE(m.match_arrival(Envelope{1, 0, 7, 8}));  // wrong source
}

TEST(Matcher, WildcardAndDirectedInterleaveByPostOrder) {
  // Directed receives live in (src, tag) buckets, wildcards on a side
  // list; matching must still follow global post order across the two.
  sim::Engine eng;
  Matcher m;
  auto r1 = std::make_shared<RequestState>(eng);
  auto r2 = std::make_shared<RequestState>(eng);
  auto r3 = std::make_shared<RequestState>(eng);
  auto r4 = std::make_shared<RequestState>(eng);
  m.post(PostedRecv{1, 5, View::synth(1, 8), r1});          // exact
  m.post(PostedRecv{kAnySource, 5, View::synth(2, 8), r2});  // wildcard
  m.post(PostedRecv{1, 5, View::synth(3, 8), r3});          // exact
  m.post(PostedRecv{kAnySource, kAnyTag, View::synth(4, 8), r4});
  const Envelope env{1, 0, 5, 8};
  auto a = m.match_arrival(env);
  ASSERT_TRUE(a);
  EXPECT_EQ(a->req.get(), r1.get());  // oldest overall, exact bucket
  auto b = m.match_arrival(env);
  ASSERT_TRUE(b);
  EXPECT_EQ(b->req.get(), r2.get());  // wildcard posted before r3
  auto c = m.match_arrival(env);
  ASSERT_TRUE(c);
  EXPECT_EQ(c->req.get(), r3.get());
  // Remaining any/any wildcard catches an unrelated envelope.
  auto d = m.match_arrival(Envelope{9, 0, 99, 8});
  ASSERT_TRUE(d);
  EXPECT_EQ(d->req.get(), r4.get());
  EXPECT_EQ(m.posted_count(), 0u);
  EXPECT_FALSE(m.match_arrival(env));
}

TEST(Matcher, UnexpectedWildcardDrainsOldestAcrossBuckets) {
  // Unexpected messages bucket by their concrete (src, tag); a wildcard
  // receive must still claim them in arrival order across buckets.
  Matcher m;
  auto claim = [](PostedRecv) -> sim::Task<void> { co_return; };
  m.add_unexpected({Envelope{2, 0, 1, 10}, claim});
  m.add_unexpected({Envelope{3, 0, 1, 20}, claim});
  m.add_unexpected({Envelope{2, 0, 7, 30}, claim});
  const Unexpected* peek = m.peek_unexpected(kAnySource, 1);
  ASSERT_TRUE(peek);
  EXPECT_EQ(peek->env.bytes, 10u);
  auto u1 = m.match_posted(kAnySource, 1);
  ASSERT_TRUE(u1);
  EXPECT_EQ(u1->env.src, 2);
  EXPECT_EQ(u1->env.bytes, 10u);
  auto u2 = m.match_posted(kAnySource, kAnyTag);
  ASSERT_TRUE(u2);
  EXPECT_EQ(u2->env.bytes, 20u);  // older than the tag-7 message
  auto u3 = m.match_posted(2, 7);
  ASSERT_TRUE(u3);
  EXPECT_EQ(u3->env.bytes, 30u);
  EXPECT_EQ(m.unexpected_count(), 0u);
  EXPECT_FALSE(m.peek_unexpected(kAnySource, kAnyTag));
}

TEST(Matcher, UnexpectedQueueFifo) {
  Matcher m;
  int claimed = 0;
  m.add_unexpected({Envelope{2, 0, 1, 10},
                    [&](PostedRecv) -> sim::Task<void> {
                      claimed = 1;
                      co_return;
                    }});
  m.add_unexpected({Envelope{2, 0, 1, 20},
                    [&](PostedRecv) -> sim::Task<void> {
                      claimed = 2;
                      co_return;
                    }});
  auto u = m.match_posted(2, 1);
  ASSERT_TRUE(u);
  EXPECT_EQ(u->env.bytes, 10u);  // arrival order preserved
  EXPECT_EQ(m.unexpected_count(), 1u);
  EXPECT_TRUE(m.peek_unexpected(2, 1));
  EXPECT_FALSE(m.peek_unexpected(3, 1));
}

TEST(Request, NullRequestIsDone) {
  Request r;
  EXPECT_TRUE(r.done());
  EXPECT_FALSE(r.valid());
  EXPECT_EQ(r.status().bytes, 0u);
}

TEST(Request, CompletionWakesWaiter) {
  sim::Engine eng;
  auto st = std::make_shared<RequestState>(eng);
  Request r(st);
  EXPECT_FALSE(r.done());
  Status seen{};
  eng.spawn([](Request r, Status& out) -> sim::Task<void> {
    out = co_await r.await_done();
  }(r, seen));
  eng.after(sim::Time::us(3), [st] { st->complete(Status{4, 9, 128}); });
  eng.run();
  EXPECT_TRUE(r.done());
  EXPECT_EQ(seen.source, 4);
  EXPECT_EQ(seen.tag, 9);
  EXPECT_EQ(seen.bytes, 128u);
}

TEST(ReducePayload, AllTypesAndOps) {
  {
    double a[3] = {1, 5, 2}, b[3] = {4, 2, 2};
    reduce_payload(View::in(a, 24), View::out(b, 24), 3, Dtype::kDouble,
                   ROp::kSum);
    EXPECT_DOUBLE_EQ(b[0], 5);
    EXPECT_DOUBLE_EQ(b[1], 7);
  }
  {
    std::int32_t a[2] = {3, -7}, b[2] = {1, 9};
    reduce_payload(View::in(a, 8), View::out(b, 8), 2, Dtype::kInt32,
                   ROp::kMax);
    EXPECT_EQ(b[0], 3);
    EXPECT_EQ(b[1], 9);
  }
  {
    std::int64_t a[2] = {3, -7}, b[2] = {1, 9};
    reduce_payload(View::in(a, 16), View::out(b, 16), 2, Dtype::kInt64,
                   ROp::kMin);
    EXPECT_EQ(b[0], 1);
    EXPECT_EQ(b[1], -7);
  }
  {
    unsigned char a[2] = {3, 200}, b[2] = {10, 50};
    reduce_payload(View::in(a, 2), View::out(b, 2), 2, Dtype::kByte,
                   ROp::kSum);
    EXPECT_EQ(b[0], 13);
  }
}

TEST(Topology, BlockMapping) {
  const auto t = Topology::block(4, 2);
  ASSERT_EQ(t.rank_node.size(), 8u);
  EXPECT_EQ(t.rank_node[0], 0);
  EXPECT_EQ(t.rank_node[1], 0);
  EXPECT_EQ(t.rank_node[2], 1);
  EXPECT_EQ(t.rank_node[7], 3);
}

TEST(Mpi, SlotsAndNodesResolve) {
  sim::Engine eng;
  Mpi mpi(eng, Topology::block(2, 2));
  EXPECT_EQ(mpi.size(), 4u);
  EXPECT_TRUE(mpi.same_node(0, 1));
  EXPECT_FALSE(mpi.same_node(1, 2));
  EXPECT_EQ(mpi.proc(0).slot(), 0);
  EXPECT_EQ(mpi.proc(1).slot(), 1);
  EXPECT_EQ(mpi.proc(2).slot(), 0);
  EXPECT_THROW(mpi.device(), std::logic_error);  // none installed yet
}

TEST(DtypeSize, Sizes) {
  EXPECT_EQ(dtype_size(Dtype::kByte), 1u);
  EXPECT_EQ(dtype_size(Dtype::kInt32), 4u);
  EXPECT_EQ(dtype_size(Dtype::kInt64), 8u);
  EXPECT_EQ(dtype_size(Dtype::kDouble), 8u);
}

}  // namespace
