// Point-to-point MPI semantics across all three devices.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "cluster/cluster.hpp"

namespace {

using namespace mns;
using cluster::Cluster;
using cluster::ClusterConfig;
using cluster::Net;
using mpi::Comm;
using mpi::View;
using sim::Task;
using sim::Time;

class P2PAllNets : public ::testing::TestWithParam<Net> {};

INSTANTIATE_TEST_SUITE_P(AllNets, P2PAllNets,
                         ::testing::Values(Net::kInfiniBand, Net::kMyrinet,
                                           Net::kQuadrics),
                         [](const auto& info) {
                           switch (info.param) {
                             case Net::kInfiniBand: return "IBA";
                             case Net::kMyrinet: return "Myri";
                             case Net::kQuadrics: return "QSN";
                           }
                           return "?";
                         });

TEST_P(P2PAllNets, BlockingSendRecvMovesRealData) {
  ClusterConfig cfg{.nodes = 2, .net = GetParam()};
  Cluster c(cfg);
  std::vector<int> got(256, 0);
  c.run([&got](Comm& comm) -> Task<> {
    std::vector<int> data(256);
    std::iota(data.begin(), data.end(), comm.rank() * 1000);
    if (comm.rank() == 0) {
      co_await comm.send(View::in(data.data(), data.size() * 4), 1, 7);
    } else {
      auto st = co_await comm.recv(View::out(got.data(), got.size() * 4), 0, 7);
      EXPECT_EQ(st.source, 0);
      EXPECT_EQ(st.tag, 7);
      EXPECT_EQ(st.bytes, 1024u);
    }
  });
  for (int i = 0; i < 256; ++i) EXPECT_EQ(got[i], i);
}

TEST_P(P2PAllNets, LargeMessageMovesRealData) {
  // Crosses every rendezvous threshold (64 KB).
  ClusterConfig cfg{.nodes = 2, .net = GetParam()};
  Cluster c(cfg);
  const std::size_t n = 16384;
  std::vector<double> got(n, 0.0);
  c.run([&got, n](Comm& comm) -> Task<> {
    if (comm.rank() == 0) {
      std::vector<double> data(n);
      for (std::size_t i = 0; i < n; ++i) data[i] = 0.5 * static_cast<double>(i);
      co_await comm.send(View::in(data.data(), n * 8), 1, 0);
    } else {
      co_await comm.recv(View::out(got.data(), n * 8), 0, 0);
    }
  });
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_DOUBLE_EQ(got[i], 0.5 * static_cast<double>(i));
  }
}

TEST_P(P2PAllNets, UnexpectedMessageIsBuffered) {
  // Sender fires before the receiver posts: the message must wait in the
  // unexpected queue and still deliver correctly.
  ClusterConfig cfg{.nodes = 2, .net = GetParam()};
  Cluster c(cfg);
  int got = 0;
  c.run([&got](Comm& comm) -> Task<> {
    if (comm.rank() == 0) {
      int v = 42;
      co_await comm.send(View::in(&v, 4), 1, 3);
    } else {
      co_await comm.compute(100e-6);  // 100 us: message arrives first
      co_await comm.recv(View::out(&got, 4), 0, 3);
    }
  });
  EXPECT_EQ(got, 42);
}

TEST_P(P2PAllNets, UnexpectedLargeMessage) {
  ClusterConfig cfg{.nodes = 2, .net = GetParam()};
  Cluster c(cfg);
  const std::size_t n = 64 << 10;
  std::vector<char> got(n, 0);
  c.run([&got, n](Comm& comm) -> Task<> {
    if (comm.rank() == 0) {
      std::vector<char> data(n, 'x');
      co_await comm.send(View::in(data.data(), n), 1, 1);
    } else {
      co_await comm.compute(3e-3);
      co_await comm.recv(View::out(got.data(), n), 0, 1);
    }
  });
  EXPECT_EQ(got[0], 'x');
  EXPECT_EQ(got[n - 1], 'x');
}

TEST_P(P2PAllNets, NonOvertakingSamePair) {
  // Ten same-tag messages must arrive in order regardless of size mix.
  ClusterConfig cfg{.nodes = 2, .net = GetParam()};
  Cluster c(cfg);
  std::vector<int> order;
  c.run([&order](Comm& comm) -> Task<> {
    if (comm.rank() == 0) {
      for (int i = 0; i < 10; ++i) {
        const std::uint64_t sz = (i % 3 == 0) ? 64 : (128 << 10);
        co_await comm.send(View::synth(0x1000 + i * 0x100000, sz), 1, 5);
      }
    } else {
      for (int i = 0; i < 10; ++i) {
        const std::uint64_t sz = (i % 3 == 0) ? 64 : (128 << 10);
        auto st = co_await comm.recv(View::synth(0x9000000 + i * 0x100000, sz),
                                     0, 5);
        order.push_back(static_cast<int>(st.bytes));
      }
    }
  });
  ASSERT_EQ(order.size(), 10u);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[i], (i % 3 == 0) ? 64 : (128 << 10)) << i;
  }
}

TEST_P(P2PAllNets, AnySourceAnyTag) {
  ClusterConfig cfg{.nodes = 4, .net = GetParam()};
  Cluster c(cfg);
  std::vector<int> sources;
  c.run([&sources](Comm& comm) -> Task<> {
    if (comm.rank() == 0) {
      for (int i = 1; i < 4; ++i) {
        int x = 0;
        auto st = co_await comm.recv(View::out(&x, 4));
        EXPECT_EQ(x, st.source * 10);
        sources.push_back(st.source);
      }
    } else {
      int v = comm.rank() * 10;
      co_await comm.send(View::in(&v, 4), 0, comm.rank());
    }
  });
  EXPECT_EQ(sources.size(), 3u);
}

TEST_P(P2PAllNets, IsendIrecvWaitAll) {
  ClusterConfig cfg{.nodes = 2, .net = GetParam()};
  Cluster c(cfg);
  std::vector<int> got(4, 0);
  c.run([&got](Comm& comm) -> Task<> {
    if (comm.rank() == 0) {
      std::vector<int> vals{1, 2, 3, 4};
      std::vector<mpi::Request> reqs;
      for (int i = 0; i < 4; ++i) {
        reqs.push_back(co_await comm.isend(View::in(&vals[i], 4), 1, i));
      }
      co_await comm.wait_all(std::move(reqs));
    } else {
      std::vector<mpi::Request> reqs;
      for (int i = 0; i < 4; ++i) {
        reqs.push_back(co_await comm.irecv(View::out(&got[i], 4), 0, i));
      }
      co_await comm.wait_all(std::move(reqs));
    }
  });
  EXPECT_EQ(got, (std::vector<int>{1, 2, 3, 4}));
}

TEST_P(P2PAllNets, SendrecvExchange) {
  ClusterConfig cfg{.nodes = 2, .net = GetParam()};
  Cluster c(cfg);
  std::vector<int> got(2, -1);
  c.run([&got](Comm& comm) -> Task<> {
    const int me = comm.rank();
    const int peer = 1 - me;
    int mine = me + 100;
    int theirs = -1;
    co_await comm.sendrecv(View::in(&mine, 4), peer, 0,
                           View::out(&theirs, 4), peer, 0);
    got[static_cast<std::size_t>(me)] = theirs;
  });
  EXPECT_EQ(got[0], 101);
  EXPECT_EQ(got[1], 100);
}

TEST_P(P2PAllNets, IntraNodeSendRecv) {
  ClusterConfig cfg{.nodes = 1, .ppn = 2, .net = GetParam()};
  Cluster c(cfg);
  int small = 0;
  std::vector<char> big(256 << 10, 0);
  c.run([&](Comm& comm) -> Task<> {
    if (comm.rank() == 0) {
      int v = 9;
      co_await comm.send(View::in(&v, 4), 1, 0);
      std::vector<char> data(256 << 10, 'z');
      co_await comm.send(View::in(data.data(), data.size()), 1, 1);
    } else {
      co_await comm.recv(View::out(&small, 4), 0, 0);
      co_await comm.recv(View::out(big.data(), big.size()), 0, 1);
    }
  });
  EXPECT_EQ(small, 9);
  EXPECT_EQ(big[0], 'z');
  EXPECT_EQ(big[big.size() - 1], 'z');
}

TEST_P(P2PAllNets, PingPongLatencyIsPlausible) {
  ClusterConfig cfg{.nodes = 2, .net = GetParam()};
  Cluster c(cfg);
  double lat_us = 0;
  c.run([&lat_us](Comm& comm) -> Task<> {
    const int iters = 100;
    char b[4] = {};
    if (comm.rank() == 0) {
      const double t0 = comm.wtime();
      for (int i = 0; i < iters; ++i) {
        co_await comm.send(View::in(b, 4), 1, 0);
        co_await comm.recv(View::out(b, 4), 1, 0);
      }
      lat_us = (comm.wtime() - t0) / (2.0 * iters) * 1e6;
    } else {
      for (int i = 0; i < iters; ++i) {
        co_await comm.recv(View::out(b, 4), 0, 0);
        co_await comm.send(View::in(b, 4), 0, 0);
      }
    }
  });
  // All three are single-digit microseconds in the paper (Fig. 1).
  EXPECT_GT(lat_us, 3.0);
  EXPECT_LT(lat_us, 10.0);
}

TEST_P(P2PAllNets, SyntheticViewsMoveNoData) {
  ClusterConfig cfg{.nodes = 2, .net = GetParam()};
  Cluster c(cfg);
  c.run([](Comm& comm) -> Task<> {
    if (comm.rank() == 0) {
      co_await comm.send(View::synth(0xA0000, 1 << 20), 1, 0);
    } else {
      auto st = co_await comm.recv(View::synth(0xB0000, 1 << 20), 0, 0);
      EXPECT_EQ(st.bytes, 1u << 20);
    }
  });
}

TEST(MpiErrors, BadDestinationThrows) {
  ClusterConfig cfg{.nodes = 2, .net = Net::kInfiniBand};
  Cluster c(cfg);
  EXPECT_THROW(c.run([](Comm& comm) -> Task<> {
                 if (comm.rank() == 0) {
                   co_await comm.send(View::synth(1, 4), 7, 0);
                 }
               }),
               std::invalid_argument);
}

}  // namespace
