// Property and stress tests: randomized traffic with invariants checked
// (delivery, per-pair ordering, payload integrity, determinism), plus
// failure-injection for API misuse.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "cluster/cluster.hpp"
#include "util/rng.hpp"

namespace {

using namespace mns;
using cluster::Cluster;
using cluster::ClusterConfig;
using cluster::Net;
using mpi::Comm;
using mpi::Request;
using mpi::View;
using sim::Task;

class StressAllNets : public ::testing::TestWithParam<Net> {};

INSTANTIATE_TEST_SUITE_P(AllNets, StressAllNets,
                         ::testing::Values(Net::kInfiniBand, Net::kMyrinet,
                                           Net::kQuadrics),
                         [](const auto& info) {
                           switch (info.param) {
                             case Net::kInfiniBand: return "IBA";
                             case Net::kMyrinet: return "Myri";
                             case Net::kQuadrics: return "QSN";
                           }
                           return "?";
                         });

// Every rank fires a random mix of sizes at random peers with sequenced
// payloads; receivers check that per-(source,tag) sequence numbers arrive
// in order and no message is lost or corrupted.
TEST_P(StressAllNets, RandomTrafficPreservesOrderAndData) {
  ClusterConfig cfg{.nodes = 4, .ppn = 2, .net = GetParam()};
  Cluster c(cfg);
  const int np = c.ranks();
  const int kMsgs = 60;  // per sender, to each peer

  std::vector<std::vector<int>> received_seq(
      static_cast<std::size_t>(np),
      std::vector<int>(static_cast<std::size_t>(np), 0));
  bool ok = true;

  c.run([&](Comm& comm) -> Task<> {
    const int me = comm.rank();
    util::Rng rng(1234 + static_cast<unsigned>(me));

    // Receiver side first: post all irecvs sized worst-case.
    struct Slot {
      std::vector<std::int64_t> buf;
      Request req;
    };
    std::vector<Slot> slots;
    for (int src = 0; src < np; ++src) {
      if (src == me) continue;
      for (int i = 0; i < kMsgs; ++i) {
        slots.emplace_back();
        slots.back().buf.assign(1 << 12, -1);
        slots.back().req = co_await comm.irecv(
            View::out(slots.back().buf.data(), slots.back().buf.size() * 8),
            src, /*tag=*/src);
      }
    }

    // Sender side: random sizes, seq-stamped payloads.
    for (int i = 0; i < kMsgs; ++i) {
      for (int dst = 0; dst < np; ++dst) {
        if (dst == me) continue;
        const std::uint64_t words = 1 + rng.below(1 << 10);
        std::vector<std::int64_t> payload(static_cast<std::size_t>(words));
        payload[0] = i;  // sequence number
        for (std::size_t w = 1; w < payload.size(); ++w) {
          payload[w] = static_cast<std::int64_t>(me) * 1000000 + i;
        }
        co_await comm.send(View::in(payload.data(), words * 8), dst, me);
      }
    }

    // Drain and check.
    for (auto& s : slots) {
      const auto st = co_await comm.wait(s.req);
      const int src = st.source;
      const auto seq = s.buf[0];
      auto& expect = received_seq[static_cast<std::size_t>(me)]
                                 [static_cast<std::size_t>(src)];
      if (seq != expect) ok = false;  // per-pair order violated
      ++expect;
      const auto words = st.bytes / 8;
      for (std::uint64_t w = 1; w < words; ++w) {
        if (s.buf[static_cast<std::size_t>(w)] !=
            static_cast<std::int64_t>(src) * 1000000 + seq) {
          ok = false;  // payload corrupted
        }
      }
    }
  });

  EXPECT_TRUE(ok) << "ordering or payload violation";
  for (int r = 0; r < np; ++r) {
    for (int s = 0; s < np; ++s) {
      if (r == s) continue;
      EXPECT_EQ(received_seq[r][s], kMsgs) << "lost messages " << s << "->" << r;
    }
  }
}

TEST_P(StressAllNets, DeterministicAcrossRuns) {
  // Identical programs must produce bit-identical simulated end times.
  auto run_sym = [&] {
    ClusterConfig cfg{.nodes = 4, .ppn = 1, .net = GetParam()};
    Cluster c(cfg);
    c.run([](Comm& comm) -> Task<> {
      util::Rng rng(77);
      for (int i = 0; i < 40; ++i) {
        const std::uint64_t bytes = 8 << rng.below(12);
        const int peer = comm.rank() ^ 1;
        co_await comm.sendrecv(View::synth(0x1000 + i, bytes), peer, 0,
                               View::synth(0x900000 + i, bytes), peer, 0);
      }
    });
    return c.engine().now();
  };
  const auto a = run_sym();
  const auto b = run_sym();
  EXPECT_EQ(a, b);
}

TEST_P(StressAllNets, ManyOutstandingRequests) {
  // 256 concurrent irecv/isend pairs per direction; all must complete.
  ClusterConfig cfg{.nodes = 2, .net = GetParam()};
  Cluster c(cfg);
  int completed = 0;
  c.run([&](Comm& comm) -> Task<> {
    const int peer = 1 - comm.rank();
    std::vector<Request> reqs;
    for (int i = 0; i < 256; ++i) {
      reqs.push_back(co_await comm.irecv(
          View::synth(0x5000000 + i * 0x1000, 1024), peer, i));
    }
    for (int i = 0; i < 256; ++i) {
      reqs.push_back(co_await comm.isend(
          View::synth(0x9000000 + i * 0x1000, 1024), peer, i));
    }
    co_await comm.wait_all(std::move(reqs));
    ++completed;
  });
  EXPECT_EQ(completed, 2);
}

TEST_P(StressAllNets, MixedCollectivesAndP2P) {
  ClusterConfig cfg{.nodes = 8, .net = GetParam()};
  Cluster c(cfg);
  std::vector<double> finals(8, -1);
  c.run([&](Comm& comm) -> Task<> {
    const int me = comm.rank();
    double acc = me;
    for (int round = 0; round < 5; ++round) {
      // Shift pattern p2p.
      const int to = (me + 1 + round) % comm.size();
      const int from = (me - 1 - round + 2 * comm.size()) % comm.size();
      double incoming = 0;
      co_await comm.sendrecv(View::in(&acc, 8), to, round,
                             View::out(&incoming, 8), from, round);
      acc += incoming;
      co_await comm.allreduce(View::out(&acc, 8), 1, mpi::Dtype::kDouble,
                              mpi::ROp::kMax);
      co_await comm.barrier();
    }
    finals[static_cast<std::size_t>(me)] = acc;
  });
  for (int r = 1; r < 8; ++r) EXPECT_DOUBLE_EQ(finals[r], finals[0]);
}

TEST(MpiMisuse, PpnOutOfRangeThrows) {
  EXPECT_THROW(Cluster(ClusterConfig{.nodes = 2, .ppn = 3}),
               std::invalid_argument);
  EXPECT_THROW(Cluster(ClusterConfig{.nodes = 0}), std::invalid_argument);
}

TEST(MpiMisuse, AlltoallvBadCountsThrow) {
  ClusterConfig cfg{.nodes = 2, .net = Net::kInfiniBand};
  Cluster c(cfg);
  EXPECT_THROW(
      c.run([](Comm& comm) -> Task<> {
        std::vector<std::uint64_t> wrong{64};  // needs one per rank
        co_await comm.alltoallv(View::synth(1, 128), wrong,
                                View::synth(2, 128), wrong);
      }),
      std::invalid_argument);
}

TEST(MpiMisuse, UnmatchedRecvDeadlocks) {
  // A receive with no sender must surface as a simulation deadlock, not a
  // hang or silent completion.
  ClusterConfig cfg{.nodes = 2, .net = Net::kInfiniBand};
  Cluster c(cfg);
  EXPECT_THROW(c.run([](Comm& comm) -> Task<> {
                 if (comm.rank() == 0) {
                   co_await comm.recv(View::synth(1, 64), 1, 42);
                 }
               }),
               sim::DeadlockError);
}

TEST(MpiMisuse, MismatchedCollectiveDeadlocks) {
  ClusterConfig cfg{.nodes = 2, .net = Net::kQuadrics};
  Cluster c(cfg);
  EXPECT_THROW(c.run([](Comm& comm) -> Task<> {
                 if (comm.rank() == 0) co_await comm.barrier();
                 // rank 1 never arrives
               }),
               sim::DeadlockError);
}

}  // namespace
