// Partition-count invariance at cluster level (the --partitions analogue
// of sweep_test's --jobs suite): across 64 chaos seeds crossed with
// --faults and --express, the digest of a --partitions={2,4,8} run must
// equal the --partitions=1 run bit for bit. Also covers the partition
// plan itself: block layout, fabric-derived lookahead, validation.
#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "cluster/cluster.hpp"
#include "cluster/partition.hpp"
#include "fault/fault.hpp"
#include "sweep/sweep_runner.hpp"

namespace {

using namespace mns;

constexpr std::size_t kNodes = 8;
constexpr std::uint64_t kEagerBytes = 512;
constexpr std::uint64_t kRdvBytes = 32 << 10;
constexpr std::uint64_t kSeeds = 64;

constexpr cluster::Net kNets[] = {cluster::Net::kInfiniBand,
                                  cluster::Net::kMyrinet,
                                  cluster::Net::kQuadrics};

// Chaos mix per seed (drops always; corruption/flaps/stalls cycling),
// same spirit as fault_test's plan_for.
fault::FaultPlan plan_for(std::uint64_t seed) {
  fault::FaultPlan p(seed);
  p.drop(fault::kAnyNode, fault::kAnyNode,
         0.02 + 0.01 * static_cast<double>(seed % 8));
  if (seed % 3 == 0) p.corrupt(0, 1, 0.05);
  if (seed % 4 == 0) p.flap(1, 2, sim::Time::us(20), sim::Time::us(60));
  if (seed % 5 == 0) p.reg_fail(fault::kAnyNode, 0.10);
  return p;
}

struct Digest {
  std::vector<std::uint64_t> words;
  bool operator==(const Digest&) const = default;
};

// Neighbour exchange (one eager + one rendezvous per rank) reduced to a
// flat word list: statuses in program order, fabric counters, final
// clock, violation count. Runs on SweepRunner workers — no gtest macros.
Digest run_point(cluster::Net net, std::uint64_t seed, int partitions,
                 bool faulted, bool express) {
  cluster::ClusterConfig cfg{.nodes = kNodes, .net = net};
  cfg.express = express;
  cfg.partitions = partitions;
  if (faulted) cfg.faults = plan_for(seed);
  cluster::Cluster c(cfg);
  const auto ranks = static_cast<std::size_t>(c.ranks());
  std::vector<std::vector<mpi::Status>> st(ranks);
  c.run([&](mpi::Comm& comm) -> sim::Task<void> {
    const int r = comm.rank();
    const int right = (r + 1) % comm.size();
    const int left = (r + comm.size() - 1) % comm.size();
    auto r1 = co_await comm.irecv(
        mpi::View::synth(0x4000u + static_cast<unsigned>(r), kEagerBytes),
        left, 1);
    auto r2 = co_await comm.irecv(
        mpi::View::synth(0x60000u + static_cast<unsigned>(r), kRdvBytes),
        left, 2);
    auto s1 = co_await comm.isend(
        mpi::View::synth(0x1000u + static_cast<unsigned>(r), kEagerBytes),
        right, 1);
    auto s2 = co_await comm.isend(
        mpi::View::synth(0x20000u + static_cast<unsigned>(r), kRdvBytes),
        right, 2);
    auto& out = st[static_cast<std::size_t>(r)];
    out.push_back(co_await comm.wait(r1));
    out.push_back(co_await comm.wait(r2));
    out.push_back(co_await comm.wait(s1));
    out.push_back(co_await comm.wait(s2));
  });

  model::NetFabric& fab = c.fabric();
  std::uint64_t violations = 0;
  Digest d;
  for (const auto& rank_statuses : st) {
    if (rank_statuses.size() != 4) ++violations;
    for (const mpi::Status& s : rank_statuses) {
      if (s.error != mpi::kErrNone && s.error != mpi::kErrFabric) {
        ++violations;
      }
      d.words.push_back(static_cast<std::uint64_t>(s.error));
      d.words.push_back(static_cast<std::uint64_t>(s.source));
      d.words.push_back(static_cast<std::uint64_t>(s.tag));
      d.words.push_back(s.bytes);
    }
  }
  if (fab.messages_posted() !=
      fab.messages_delivered() + fab.messages_errored()) {
    ++violations;
  }
  if (!c.make_audit_report().clean()) ++violations;
  // The plan the run was executed under must be structurally sound —
  // folded into the digest so a partition-dependent plan shows up as a
  // mismatch, not silently.
  const cluster::PartitionPlan& plan = c.partition_plan();
  if (plan.partitions != partitions || plan.lookahead <= sim::Time::zero()) {
    ++violations;
  }
  d.words.push_back(fab.messages_posted());
  d.words.push_back(fab.messages_delivered());
  d.words.push_back(fab.messages_errored());
  d.words.push_back(fab.packets_dropped());
  d.words.push_back(fab.packets_retransmitted());
  d.words.push_back(fab.packets_abandoned());
  // c.now() is the max over partition engines: each partition's clock
  // stops at its own last event, and only the max matches the sequential
  // engine's final time (the globally-last event runs on one of them).
  d.words.push_back(static_cast<std::uint64_t>(c.now().count_ps()));
  d.words.push_back(violations);
  return d;
}

// 64 seeds x partitions {1,2,4,8}; --faults and --express crossed by
// seed phase so all four combinations appear 16 times each.
TEST(PartitionChaos, DigestsArePartitionCountInvariantAcross64Seeds) {
  constexpr int kParts[] = {1, 2, 4, 8};
  sweep::SweepRunner runner(0);  // whole machine; output order is fixed
  const auto digests =
      runner.run_indexed(kSeeds * 4, [&](std::size_t i) {
        const std::uint64_t seed = 1 + i / 4;
        const bool faulted = seed % 2 == 0;
        const bool express = (seed / 2) % 2 == 0;
        return run_point(kNets[seed % 3], seed, kParts[i % 4], faulted,
                         express);
      });
  for (std::size_t s = 0; s < kSeeds; ++s) {
    const Digest& base = digests[s * 4];  // partitions=1
    ASSERT_FALSE(base.words.empty());
    EXPECT_EQ(base.words.back(), 0u) << "invariant violated at seed "
                                     << (1 + s);
    for (std::size_t k = 1; k < 4; ++k) {
      EXPECT_EQ(digests[s * 4 + k], base)
          << "seed " << (1 + s) << " partitions " << kParts[k];
    }
  }
}

// ---------------------------------------------------------------------------
// Targeted cross-partition recovery: the ring neighbour exchange under a
// chaos drop plan forces retransmit timers to actually fire (not just
// arm) for flows whose rx half lives in another partition — the timer is
// tx-side state, the loss report and the resent packets cross the
// channel. The digest must not notice, and the retransmit counter must
// prove the recovery machine ran.

TEST(PartitionChaos, CrossPartitionRtoRetransmitsBitIdentically) {
  for (cluster::Net net :
       {cluster::Net::kInfiniBand, cluster::Net::kMyrinet}) {
    const Digest base =
        run_point(net, /*seed=*/7, /*partitions=*/1, /*faulted=*/true,
                  /*express=*/false);
    ASSERT_FALSE(base.words.empty());
    EXPECT_EQ(base.words.back(), 0u) << "violations in sequential base";
    // words[-4] is packets_retransmitted (see run_point's layout): the
    // chaos plan for seed 7 must actually exercise recovery.
    EXPECT_GT(base.words[base.words.size() - 4], 0u)
        << "drop plan never fired an RTO; the test is vacuous";
    for (int k : {2, 4, 8}) {
      EXPECT_EQ(run_point(net, 7, k, true, false), base)
          << "cross-partition RTO diverged at partitions=" << k;
    }
  }
}

// Staged bulk traffic (Myrinet SRAM): the per-node staging pipe is shared
// between the send and receive sides (the Fig. 5 bi-directional
// bottleneck), so a boundary tx half must not reorder the shared queue
// against the sequential machine. Bidirectional >256 KiB messages with a
// 1-byte runt last packet pin both the kTx-deferred ENTER and the staging
// lookahead floor.

TEST(PartitionChaos, StagedBulkGmTrafficIsPartitionInvariant) {
  auto point = [](int partitions) {
    cluster::ClusterConfig cfg{.nodes = 2,
                               .net = cluster::Net::kMyrinet};
    cfg.partitions = partitions;
    cluster::Cluster c(cfg);
    constexpr std::uint64_t kBulk = (256u << 10) + 1;  // 1-byte runt
    std::vector<std::vector<mpi::Status>> st(
        static_cast<std::size_t>(c.ranks()));
    c.run([&](mpi::Comm& comm) -> sim::Task<void> {
      const int peer = 1 - comm.rank();
      auto r1 = co_await comm.irecv(
          mpi::View::synth(0x9000u + static_cast<unsigned>(comm.rank()),
                           kBulk),
          peer, 5);
      auto s1 = co_await comm.isend(
          mpi::View::synth(0xA000u + static_cast<unsigned>(comm.rank()),
                           kBulk),
          peer, 5);
      auto& out = st[static_cast<std::size_t>(comm.rank())];
      out.push_back(co_await comm.wait(r1));
      out.push_back(co_await comm.wait(s1));
    });
    Digest d;
    for (const auto& rs : st) {
      for (const mpi::Status& s : rs) {
        d.words.push_back(static_cast<std::uint64_t>(s.error));
        d.words.push_back(s.bytes);
      }
    }
    d.words.push_back(c.fabric().messages_delivered());
    d.words.push_back(static_cast<std::uint64_t>(c.now().count_ps()));
    d.words.push_back(c.make_audit_report().clean() ? 0u : 1u);
    return d;
  };
  const Digest base = point(1);
  ASSERT_FALSE(base.words.empty());
  EXPECT_EQ(base.words.back(), 0u) << "audit failed in sequential base";
  EXPECT_EQ(point(2), base) << "staged bulk traffic diverged at K=2";
}

// ---------------------------------------------------------------------------
// The plan itself.

TEST(PartitionPlan, BlockLayoutAndFabricLookahead) {
  for (cluster::Net net : kNets) {
    cluster::ClusterConfig cfg{.nodes = 8, .net = net};
    cfg.partitions = 4;
    cluster::Cluster c(cfg);
    const cluster::PartitionPlan& plan = c.partition_plan();
    EXPECT_EQ(plan.nodes, 8);
    EXPECT_EQ(plan.partitions, 4);
    EXPECT_EQ(plan.part_of, (std::vector<int>{0, 0, 1, 1, 2, 2, 3, 3}));
    EXPECT_EQ(plan.sizes, (std::vector<int>{2, 2, 2, 2}));
    // The conservative lookahead is the fabric's tx wire latency — the
    // physical floor below which no cross-node effect can propagate.
    EXPECT_EQ(plan.lookahead, c.fabric().nic_config().tx_wire_latency);
    EXPECT_GT(plan.lookahead, sim::Time::zero());
    // Round-trips into the PDES core's vocabulary unchanged.
    const sim::pdes::Topology topo = plan.to_topology();
    EXPECT_NO_THROW(topo.validate());
    EXPECT_EQ(topo.part_of, plan.part_of);
    EXPECT_EQ(topo.lookahead, plan.lookahead);
  }
}

TEST(PartitionPlan, UnevenBlocksSpreadRemainderOverLeadingPartitions) {
  const auto plan =
      cluster::make_partition_plan(10, 4, sim::Time::ns(1));
  EXPECT_EQ(plan.sizes, (std::vector<int>{3, 2, 3, 2}));
  int total = 0;
  for (int s : plan.sizes) total += s;
  EXPECT_EQ(total, 10);
  // part_of must be monotone (contiguous blocks).
  for (std::size_t i = 1; i < plan.part_of.size(); ++i) {
    EXPECT_GE(plan.part_of[i], plan.part_of[i - 1]);
  }
}

TEST(PartitionPlan, RejectsImpossibleRequests) {
  EXPECT_THROW(cluster::make_partition_plan(0, 1, sim::Time::ns(1)),
               std::invalid_argument);
  EXPECT_THROW(cluster::make_partition_plan(8, 0, sim::Time::ns(1)),
               std::invalid_argument);
  EXPECT_THROW(cluster::make_partition_plan(8, 9, sim::Time::ns(1)),
               std::invalid_argument);
  EXPECT_THROW(cluster::make_partition_plan(8, 2, sim::Time::zero()),
               std::invalid_argument);
  // And through the cluster: an impossible --partitions fails at
  // construction, not mid-run.
  cluster::ClusterConfig cfg;
  cfg.nodes = 8;
  cfg.partitions = 16;
  EXPECT_THROW(cluster::Cluster c(cfg), std::invalid_argument);
}

}  // namespace
