// Conservative PDES core (src/sim/pdes): partition-count invariance of
// observable results, the cross-partition cancellation (RTO) pattern,
// termination, and contract validation.
//
// The load-bearing property throughout: the merged emission stream of a
// run is BIT-IDENTICAL for every partition count, including the
// inline-sequential partitions == 1 — the in-run analogue of the sweep
// runner's --jobs invariance.

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <memory>
#include <stdexcept>
#include <vector>

#include "sim/pdes/pdes.hpp"

namespace {

using mns::sim::DeadlockError;
using mns::sim::EventFn;
using mns::sim::EventId;
using mns::sim::EventLimitError;
using mns::sim::Time;
namespace pdes = mns::sim::pdes;

constexpr std::int64_t kLaPs = 1000;  // 1 ns lookahead floor

std::uint64_t mix(std::uint64_t x) {
  // SplitMix64 finalizer: deterministic, seedable, well-scrambled.
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

// ---------------------------------------------------------------------------
// Seeded random traffic: every node fires `rounds` kickoffs, each message
// hop rehashes an accumulator, emits the result, and forwards with a TTL.
// Quantized delays force same-timestamp collisions from many sources, so
// the deterministic (when, src, send-index) delivery order is actually
// load-bearing, not vacuously unique.

struct TrafficParams {
  int nodes = 16;
  int rounds = 8;
  int ttl = 12;
  std::uint64_t seed = 1;
};

pdes::Result run_traffic(const TrafficParams& pp, int partitions) {
  const auto topo =
      pdes::Topology::blocks(pp.nodes, partitions, Time::ps(kLaPs));
  // Node state is indexed by node id and touched only by the owning
  // partition — the affinity contract the PDES layer is built around.
  auto acc = std::make_shared<std::vector<std::uint64_t>>(
      static_cast<std::size_t>(pp.nodes), 0);
  const auto build = [pp, acc](pdes::Context& ctx) {
    pdes::Context* cp = &ctx;
    for (int n : ctx.nodes()) {
      ctx.on_message(n, [pp, acc](pdes::Context& c, int node,
                                  std::uint64_t w) {
        const std::uint64_t ttl = w >> 56;
        auto& a = (*acc)[static_cast<std::size_t>(node)];
        const std::uint64_t v = mix(a ^ (w & 0x00ffffffffffffffull));
        a = v;
        c.emit(node, v);
        if (ttl > 0) {
          const int dst = static_cast<int>(v % static_cast<std::uint64_t>(
                                                   pp.nodes));
          // Quantized delay: many sources land on identical timestamps.
          const std::int64_t d =
              kLaPs * static_cast<std::int64_t>(1 + ((v >> 8) % 3));
          c.send(node, dst, c.now() + Time::ps(d),
                 ((ttl - 1) << 56) | (v & 0x00ffffffffffffffull));
        }
      });
      for (int r = 0; r < pp.rounds; ++r) {
        const std::uint64_t h =
            mix(pp.seed ^ (static_cast<std::uint64_t>(n) << 32) ^
                static_cast<std::uint64_t>(r));
        const std::int64_t t0 =
            kLaPs * static_cast<std::int64_t>(1 + (h % 5));
        const std::uint64_t w0 =
            (static_cast<std::uint64_t>(pp.ttl) << 56) |
            (h & 0x00ffffffffffffffull);
        ctx.engine().at(Time::ps(t0), EventFn::make([cp, n, w0, t0] {
                          const int dst =
                              static_cast<int>(w0 % 1000003ull) % 16;
                          (void)t0;
                          cp->send(n, dst % 16, cp->now() + Time::ps(kLaPs),
                                   w0);
                        }));
      }
    }
  };
  return pdes::run(topo, build);
}

TEST(Pdes, TrafficIsPartitionCountInvariant) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    TrafficParams pp;
    pp.seed = seed;
    const pdes::Result base = run_traffic(pp, 1);
    ASSERT_GT(base.emissions.size(), 200u) << "seed " << seed;
    ASSERT_GT(base.end_ps, 0) << "seed " << seed;
    for (int k : {2, 3, 4, 8, 16}) {
      const pdes::Result r = run_traffic(pp, k);
      EXPECT_EQ(r.digest(), base.digest())
          << "partitions=" << k << " seed=" << seed;
      EXPECT_EQ(r.emissions.size(), base.emissions.size());
      EXPECT_EQ(r.end_ps, base.end_ps);
      EXPECT_GT(r.messages, 0u);
    }
  }
}

TEST(Pdes, EmissionStreamsAreExactlyEqualNotJustDigestEqual) {
  TrafficParams pp;
  pp.seed = 42;
  const pdes::Result a = run_traffic(pp, 1);
  const pdes::Result b = run_traffic(pp, 4);
  ASSERT_EQ(a.emissions.size(), b.emissions.size());
  for (std::size_t i = 0; i < a.emissions.size(); ++i) {
    ASSERT_EQ(a.emissions[i], b.emissions[i]) << "emission " << i;
  }
}

TEST(Pdes, MessageCountsAndEventTotalsArePartitionInvariant) {
  TrafficParams pp;
  pp.seed = 7;
  const pdes::Result a = run_traffic(pp, 1);
  const pdes::Result b = run_traffic(pp, 8);
  // Message traffic and workload event totals are defined by the
  // workload, not the layout: Result::events excludes the injected
  // delivery-batch carrier events (whose grouping — delivery_batches —
  // is the one layout-dependent counter).
  EXPECT_EQ(a.messages, b.messages);
  EXPECT_EQ(a.events, b.events);
  EXPECT_GT(a.events, 0u);
  EXPECT_GT(a.delivery_batches, 0u);
  EXPECT_LE(a.delivery_batches, a.messages);
  EXPECT_LE(b.delivery_batches, b.messages);
}

// ---------------------------------------------------------------------------
// The RTO pattern (satellite: cancellation across partitions): requester
// nodes arm a cancellable retransmit timer per request; the responder —
// in another partition for K > 1 — acks, and the ack handler cancels the
// timer. Exactly one of {ack-cancelled, timeout} must resolve every
// request, for every partition count, with timers cancelled from batched
// delivery handlers (quantized ack times force multi-message batches).

struct RtoState {
  std::map<int, EventId> timers;  // request id -> armed timer
  int resolved = 0;
};

pdes::Result run_rto(int pairs, int requests, std::uint64_t seed,
                     int partitions) {
  const int nodes = 2 * pairs;
  const auto topo =
      pdes::Topology::blocks(nodes, partitions, Time::ps(kLaPs));
  auto st = std::make_shared<std::vector<RtoState>>(
      static_cast<std::size_t>(nodes));
  const std::int64_t rto_ps = 40 * kLaPs;
  const auto build = [=](pdes::Context& ctx) {
    pdes::Context* cp = &ctx;
    for (int n : ctx.nodes()) {
      if (n % 2 == 1) {
        // Responder: ack request id back to the requester after a
        // seed-dependent think time; some acks deliberately miss the RTO.
        ctx.on_message(n, [cp, seed, rto_ps](pdes::Context& c, int node,
                                             std::uint64_t w) {
          const std::uint64_t req = w;
          const std::uint64_t h =
              mix(seed ^ (static_cast<std::uint64_t>(node) << 40) ^ req);
          const std::int64_t think =
              (h % 4 == 0) ? rto_ps + kLaPs * static_cast<std::int64_t>(
                                                  1 + (h >> 8) % 4)
                           : kLaPs * static_cast<std::int64_t>(
                                         1 + (h >> 8) % 8);
          c.send(node, node - 1, c.now() + Time::ps(think), req);
        });
        continue;
      }
      // Requester: fire `requests` requests, arm a timer per request.
      ctx.on_message(n, [cp, st](pdes::Context& c, int node,
                                 std::uint64_t req) {
        RtoState& s = (*st)[static_cast<std::size_t>(node)];
        const auto it = s.timers.find(static_cast<int>(req));
        // Ack after the timer already fired: request resolved as a
        // timeout, the late ack must be a no-op.
        if (it == s.timers.end()) return;
        // The exactly-once pivot: cancel() returns true iff the timer
        // had not fired — ack-after-timeout must NOT double-resolve.
        if (c.engine().cancel(it->second)) {
          s.timers.erase(it);
          ++s.resolved;
          c.emit(node, 0xACC0000000000000ull | req);
        }
      });
      for (int r = 0; r < requests; ++r) {
        const std::uint64_t h =
            mix(seed ^ (static_cast<std::uint64_t>(n) << 20) ^
                static_cast<std::uint64_t>(r));
        // Quantized launch instants: several requesters share timestamps,
        // so acks return in multi-message delivery batches.
        const std::int64_t t0 =
            kLaPs * static_cast<std::int64_t>(2 + (h % 3) * 2);
        ctx.engine().at(
            Time::ps(t0), EventFn::make([cp, st, n, r, rto_ps] {
              RtoState& s = (*st)[static_cast<std::size_t>(n)];
              cp->send(n, n + 1, cp->now() + Time::ps(kLaPs),
                       static_cast<std::uint64_t>(r));
              const EventId id = cp->engine().at_cancellable(
                  cp->now() + Time::ps(rto_ps),
                  EventFn::make([cp, st, n, r] {
                    RtoState& s2 = (*st)[static_cast<std::size_t>(n)];
                    s2.timers.erase(r);
                    ++s2.resolved;
                    cp->emit(n, 0x7100000000000000ull |
                                    static_cast<std::uint64_t>(r));
                  }));
              s.timers[r] = id;
            }));
      }
    }
  };
  return pdes::run(topo, build);
}

TEST(PdesRto, CrossPartitionCancelIsExactlyOncePerRequest) {
  const int pairs = 8, requests = 16;
  for (std::uint64_t seed : {3ull, 11ull, 27ull}) {
    const pdes::Result base = run_rto(pairs, requests, seed, 1);
    // Every request resolves exactly once: one emission per request,
    // either ACK-cancelled or timer-fired.
    ASSERT_EQ(base.emissions.size(),
              static_cast<std::size_t>(pairs * requests));
    std::size_t timeouts = 0;
    for (const auto& e : base.emissions) {
      if ((e.word >> 56) == 0x71) ++timeouts;
    }
    // The seed-dependent think time must exercise BOTH arms.
    EXPECT_GT(timeouts, 0u) << "seed " << seed;
    EXPECT_LT(timeouts, static_cast<std::size_t>(pairs * requests));
    for (int k : {2, 4, 8}) {
      const pdes::Result r = run_rto(pairs, requests, seed, k);
      EXPECT_EQ(r.digest(), base.digest())
          << "partitions=" << k << " seed=" << seed;
    }
  }
}

// ---------------------------------------------------------------------------
// Termination, idleness, and sparse horizons.

TEST(Pdes, IdlePartitionsTerminate) {
  // Only nodes 0 and 1 talk; partitions owning nodes 2..7 go idle
  // immediately and must neither spin forever nor break the digests.
  const auto topo = pdes::Topology::blocks(8, 8, Time::ps(kLaPs));
  const auto build = [](pdes::Context& ctx) {
    pdes::Context* cp = &ctx;
    for (int n : ctx.nodes()) {
      ctx.on_message(n, [](pdes::Context& c, int node, std::uint64_t w) {
        c.emit(node, w);
        if (w > 0) c.send(node, 1 - node, c.now() + Time::ps(kLaPs), w - 1);
      });
      if (n == 0) {
        ctx.engine().at(Time::ps(kLaPs), EventFn::make([cp] {
                          cp->send(0, 1, cp->now() + Time::ps(kLaPs), 10);
                        }));
      }
    }
  };
  const pdes::Result r = pdes::run(topo, build);
  EXPECT_EQ(r.emissions.size(), 11u);  // 10, 9, ..., 0 ping-pong
  EXPECT_EQ(r.messages, 11u);
}

TEST(Pdes, SparseHorizonsDoNotCrawl) {
  // Events 1 ms apart with 1 ns lookahead: a pairwise-relaxation LBTS
  // would need ~10^6 exchanges per gap; the known-horizon scheme jumps
  // straight to the next event. The test passing quickly IS the check.
  const auto topo = pdes::Topology::blocks(2, 2, Time::ps(kLaPs));
  const auto build = [](pdes::Context& ctx) {
    pdes::Context* cp = &ctx;
    for (int n : ctx.nodes()) {
      ctx.on_message(n, [](pdes::Context& c, int node, std::uint64_t w) {
        c.emit(node, w);
      });
      if (n == 0) {
        for (int i = 1; i <= 50; ++i) {
          ctx.engine().at(Time::ms(i), EventFn::make([cp, i] {
                            cp->send(0, 1, cp->now() + Time::ps(kLaPs),
                                     static_cast<std::uint64_t>(i));
                          }));
        }
      }
    }
  };
  const pdes::Result r = pdes::run(topo, build);
  EXPECT_EQ(r.emissions.size(), 50u);
  EXPECT_EQ(r.end_ps, Time::ms(50).count_ps() + kLaPs);
}

// ---------------------------------------------------------------------------
// Contract validation and failure propagation.

TEST(PdesContract, TopologyValidationRejectsStructuralErrors) {
  EXPECT_THROW(pdes::Topology::blocks(0, 1, Time::ps(1)),
               std::invalid_argument);
  EXPECT_THROW(pdes::Topology::blocks(4, 5, Time::ps(1)),
               std::invalid_argument);
  EXPECT_THROW(pdes::Topology::blocks(4, 0, Time::ps(1)),
               std::invalid_argument);
  EXPECT_THROW(pdes::Topology::blocks(4, 2, Time::zero()),
               std::invalid_argument);
  pdes::Topology t = pdes::Topology::blocks(4, 2, Time::ps(1));
  t.part_of = {0, 0, 0, 0};  // partition 1 owns nothing
  EXPECT_THROW(t.validate(), std::invalid_argument);
  t.part_of = {0, 1, 2, 1};  // partition id out of range
  EXPECT_THROW(t.validate(), std::invalid_argument);
}

TEST(PdesContract, LookaheadViolationThrowsForEveryLayout) {
  for (int k : {1, 2}) {
    const auto topo = pdes::Topology::blocks(2, k, Time::ps(kLaPs));
    const auto build = [](pdes::Context& ctx) {
      pdes::Context* cp = &ctx;
      for (int n : ctx.nodes()) {
        ctx.on_message(n, [](pdes::Context&, int, std::uint64_t) {});
        if (n == 0) {
          ctx.engine().at(Time::ps(5 * kLaPs), EventFn::make([cp] {
                            // One tick short of the lookahead floor.
                            cp->send(0, 1, cp->now() + Time::ps(kLaPs - 1),
                                     1);
                          }));
        }
      }
    };
    EXPECT_THROW(pdes::run(topo, build), std::logic_error)
        << "partitions=" << k;
  }
}

TEST(PdesContract, SendFromUnownedNodeIsRejected) {
  const auto topo = pdes::Topology::blocks(2, 2, Time::ps(kLaPs));
  const auto build = [](pdes::Context& ctx) {
    pdes::Context* cp = &ctx;
    for (int n : ctx.nodes()) {
      ctx.on_message(n, [](pdes::Context&, int, std::uint64_t) {});
      if (n == 1) {
        ctx.engine().at(Time::ps(kLaPs), EventFn::make([cp] {
                          // Forged source: node 0 lives elsewhere.
                          cp->send(0, 1, cp->now() + Time::ps(kLaPs), 1);
                        }));
      }
    }
  };
  EXPECT_THROW(pdes::run(topo, build), std::logic_error);
}

TEST(PdesContract, DeadlockedProcessReportsLikeSequentialRun) {
  for (int k : {1, 2}) {
    const auto topo = pdes::Topology::blocks(2, k, Time::ps(kLaPs));
    const auto build = [](pdes::Context& ctx) {
      for (int n : ctx.nodes()) {
        ctx.on_message(n, [](pdes::Context&, int, std::uint64_t) {});
        if (n == 0) {
          // Non-daemon process suspended forever: global quiescence with
          // a live process is the deadlock the sequential engine reports.
          ctx.engine().spawn([]() -> mns::sim::Task<void> {
            co_await std::suspend_always{};
          }());
        }
      }
    };
    EXPECT_THROW(pdes::run(topo, build), DeadlockError) << "partitions=" << k;
  }
}

TEST(PdesContract, EventLimitSurfacesAsEventLimitError) {
  const auto topo = pdes::Topology::blocks(2, 2, Time::ps(kLaPs));
  const auto build = [](pdes::Context& ctx) {
    for (int n : ctx.nodes()) {
      ctx.on_message(n, [](pdes::Context& c, int node, std::uint64_t w) {
        c.send(node, 1 - node, c.now() + Time::ps(kLaPs), w + 1);
      });
      if (n == 0) {
        pdes::Context* cp = &ctx;
        ctx.engine().at(Time::ps(kLaPs), EventFn::make([cp] {
                          cp->send(0, 1, cp->now() + Time::ps(kLaPs), 0);
                        }));
      }
    }
  };
  EXPECT_THROW(pdes::run(topo, build, /*event_limit=*/200),
               EventLimitError);
}

}  // namespace
