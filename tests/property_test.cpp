// Randomized property tests over the simulation kernel and hardware
// models: invariants that must hold for ANY schedule, checked over many
// seeded scenarios.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "model/pipe.hpp"
#include "sim/engine.hpp"
#include "sim/sync.hpp"
#include "util/rng.hpp"

namespace {

using namespace mns;
using sim::Engine;
using sim::Task;
using sim::Time;

class SeededProperty : public ::testing::TestWithParam<unsigned> {};
INSTANTIATE_TEST_SUITE_P(Seeds, SeededProperty,
                         ::testing::Values(1u, 7u, 42u, 1234u, 99999u));

TEST_P(SeededProperty, EventsNeverRunOutOfOrder) {
  // Random schedule times, including duplicates and re-entrant
  // scheduling: observed timestamps must be non-decreasing and complete.
  Engine eng;
  util::Rng rng(GetParam());
  std::vector<std::int64_t> observed;
  int scheduled = 0;
  std::function<void(int)> chain = [&](int depth) {
    observed.push_back(eng.now().count_ps());
    if (depth < 3 && rng.chance(0.4)) {
      ++scheduled;
      eng.after(Time::ps(static_cast<std::int64_t>(rng.below(1000))),
                [&, depth] { chain(depth + 1); });
    }
  };
  const int n = 400;
  for (int i = 0; i < n; ++i) {
    ++scheduled;
    eng.after(Time::ps(static_cast<std::int64_t>(rng.below(100000))),
              [&] { chain(0); });
  }
  eng.run();
  EXPECT_EQ(static_cast<int>(eng.events_processed()), scheduled);
  EXPECT_TRUE(std::is_sorted(observed.begin(), observed.end()));
}

TEST_P(SeededProperty, PipeConservesBytesAndNeverOverlaps) {
  // Any mix of transfer sizes through one pipe: total busy time must
  // equal total bytes / rate (no lost or double-counted occupancy), and
  // completions must respect FIFO order.
  Engine eng;
  const double rate = 2e9;
  model::Pipe pipe(eng, rate);
  util::Rng rng(GetParam() * 7919);
  std::uint64_t total = 0;
  std::vector<int> done_order;
  const int n = 50;
  for (int i = 0; i < n; ++i) {
    const std::uint64_t bytes = 1 + rng.below(1 << 16);
    total += bytes;
    eng.spawn([](Engine& e, model::Pipe& p, std::uint64_t b,
                 std::vector<int>& order, int id,
                 std::uint64_t delay_ns) -> Task<> {
      co_await e.delay(Time::ns(static_cast<std::int64_t>(delay_ns)));
      co_await p.transfer(b);
      order.push_back(id);
    }(eng, pipe, bytes, done_order, i, rng.below(2000)));
  }
  eng.run();
  EXPECT_EQ(pipe.bytes_moved(), total);
  EXPECT_EQ(pipe.transfers(), static_cast<std::uint64_t>(n));
  // Busy time == serialization of every byte (allow 1 ps rounding each).
  const double expect_s = static_cast<double>(total) / rate;
  EXPECT_NEAR(pipe.busy_time().to_seconds(), expect_s, n * 1e-12);
  EXPECT_EQ(done_order.size(), static_cast<std::size_t>(n));
}

TEST_P(SeededProperty, SemaphoreNeverOvergrantsUnderChurn) {
  Engine eng;
  const std::size_t permits = 3;
  sim::Semaphore sem(eng, permits);
  util::Rng rng(GetParam() ^ 0xBEEF);
  int active = 0;
  int peak = 0;
  for (int i = 0; i < 80; ++i) {
    eng.spawn([](Engine& e, sim::Semaphore& s, int& active, int& peak,
                 std::uint64_t start_ns, std::uint64_t hold_ns) -> Task<> {
      co_await e.delay(Time::ns(static_cast<std::int64_t>(start_ns)));
      co_await s.acquire();
      ++active;
      peak = std::max(peak, active);
      co_await e.delay(Time::ns(static_cast<std::int64_t>(1 + hold_ns)));
      --active;
      s.release();
    }(eng, sem, active, peak, rng.below(5000), rng.below(800)));
  }
  eng.run();
  EXPECT_LE(peak, static_cast<int>(permits));
  EXPECT_EQ(active, 0);
  EXPECT_EQ(sem.available(), permits);
}

TEST_P(SeededProperty, MailboxDeliversEverythingExactlyOnce) {
  Engine eng;
  sim::Mailbox<int> mb(eng);
  util::Rng rng(GetParam() + 17);
  const int n = 300;
  std::vector<int> got;
  // Two competing receivers.
  for (int r = 0; r < 2; ++r) {
    eng.spawn([](sim::Mailbox<int>& mb, std::vector<int>& got,
                 int quota) -> Task<> {
      for (int i = 0; i < quota; ++i) got.push_back(co_await mb.receive());
    }(mb, got, n / 2));
  }
  eng.spawn([](Engine& e, sim::Mailbox<int>& mb, util::Rng rng,
               int n) -> Task<> {
    for (int i = 0; i < n; ++i) {
      mb.send(i);
      if (rng.chance(0.3)) {
        co_await e.delay(Time::ns(static_cast<std::int64_t>(rng.below(50))));
      }
    }
  }(eng, mb, rng, n));
  eng.run();
  ASSERT_EQ(got.size(), static_cast<std::size_t>(n));
  std::sort(got.begin(), got.end());
  for (int i = 0; i < n; ++i) EXPECT_EQ(got[static_cast<std::size_t>(i)], i);
}

}  // namespace
