#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <memory>
#include <random>
#include <stdexcept>
#include <utility>
#include <vector>

#include "audit/report.hpp"
#include "sim/engine.hpp"
#include "sim/ladder_queue.hpp"
#include "sim/task.hpp"
#include "sim/time.hpp"

namespace {

using namespace mns::sim;

TEST(Time, Arithmetic) {
  EXPECT_EQ(Time::us(1).count_ps(), 1'000'000);
  EXPECT_EQ((Time::us(3) + Time::ns(500)).count_ps(), 3'500'000);
  EXPECT_EQ((Time::us(3) - Time::us(1)).count_ps(), 2'000'000);
  EXPECT_EQ((Time::ns(10) * 3).count_ps(), 30'000);
  EXPECT_LT(Time::ns(999), Time::us(1));
  EXPECT_DOUBLE_EQ(Time::us(5).to_us(), 5.0);
  EXPECT_DOUBLE_EQ(Time::ms(2).to_seconds(), 0.002);
  EXPECT_DOUBLE_EQ(Time::us(10) / Time::us(4), 2.5);
}

TEST(Time, SecondsRounding) {
  EXPECT_EQ(Time::seconds(1e-12).count_ps(), 1);
  EXPECT_EQ(Time::usec(6.8).count_ps(), 6'800'000);
  EXPECT_EQ(Time::nsec(0.5).count_ps(), 500);
}

TEST(Time, TransferTime) {
  // 1000 bytes at 1 GB/s = 1 us.
  EXPECT_EQ(transfer_time(1000, 1e9).count_ps(), 1'000'000);
  // 1 byte at 2 GB/s = 500 ps.
  EXPECT_EQ(transfer_time(1, 2e9).count_ps(), 500);
}

TEST(Time, Format) {
  EXPECT_EQ(Time::zero().str(), "0");
  EXPECT_EQ(Time::us(5).str(), "5.00us");
  EXPECT_EQ(Time::ns(1).str(), "1.00ns");
}

TEST(Engine, EventsRunInTimeOrder) {
  Engine eng;
  std::vector<int> order;
  eng.after(Time::us(3), [&] { order.push_back(3); });
  eng.after(Time::us(1), [&] { order.push_back(1); });
  eng.after(Time::us(2), [&] { order.push_back(2); });
  eng.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(eng.now(), Time::us(3));
  EXPECT_EQ(eng.events_processed(), 3u);
}

TEST(Engine, TiesBreakInScheduleOrder) {
  Engine eng;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    eng.after(Time::us(1), [&order, i] { order.push_back(i); });
  }
  eng.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Engine, SchedulingIntoPastThrows) {
  Engine eng;
  eng.after(Time::us(1), [&] {
    EXPECT_THROW(eng.at(Time::zero(), [] {}), std::logic_error);
  });
  eng.run();
}

TEST(Engine, CoroutineDelayAdvancesTime) {
  Engine eng;
  Time finished;
  eng.spawn([](Engine& e, Time& out) -> Task<> {
    co_await e.delay(Time::us(10));
    co_await e.delay(Time::us(5));
    out = e.now();
  }(eng, finished));
  eng.run();
  EXPECT_EQ(finished, Time::us(15));
  EXPECT_EQ(eng.live_processes(), 0u);
}

Task<int> add_later(Engine& eng, int a, int b) {
  co_await eng.delay(Time::ns(100));
  co_return a + b;
}

Task<int> nested(Engine& eng) {
  const int x = co_await add_later(eng, 1, 2);
  const int y = co_await add_later(eng, x, 10);
  co_return y;
}

TEST(Engine, NestedTasksReturnValues) {
  Engine eng;
  int result = 0;
  eng.spawn([](Engine& e, int& out) -> Task<> {
    out = co_await nested(e);
  }(eng, result));
  eng.run();
  EXPECT_EQ(result, 13);
  EXPECT_EQ(eng.now(), Time::ns(200));
}

TEST(Engine, DeepTaskChainNoStackOverflow) {
  // Symmetric transfer: a 100k-deep chain of immediately-returning tasks
  // must not consume native stack proportional to depth.
  //
  // GCC only turns the symmetric-transfer resume into a tail call under
  // optimization; at -O0 each hop is a real call frame (and ASan makes
  // those frames much larger), so the depth that proves the property in
  // optimized builds overflows the stack in debug ones. Keep the full
  // depth wherever the property can actually hold.
#if defined(__OPTIMIZE__)
  constexpr int kDepth = 100'000;
#else
  constexpr int kDepth = 1'000;
#endif
  struct Chain {
    static Task<int> down(Engine& e, int depth) {
      if (depth == 0) co_return 0;
      co_return 1 + co_await down(e, depth - 1);
    }
  };
  Engine eng;
  int result = 0;
  eng.spawn([](Engine& e, int& out) -> Task<> {
    out = co_await Chain::down(e, kDepth);
  }(eng, result));
  eng.run();
  EXPECT_EQ(result, kDepth);
}

TEST(Engine, ExceptionPropagatesToRun) {
  Engine eng;
  eng.spawn([](Engine& e) -> Task<> {
    co_await e.delay(Time::us(1));
    throw std::runtime_error("boom");
  }(eng));
  EXPECT_THROW(eng.run(), std::runtime_error);
}

TEST(Engine, ExceptionAcrossNestedTasks) {
  struct Thrower {
    static Task<> inner(Engine& e) {
      co_await e.delay(Time::us(1));
      throw std::runtime_error("inner boom");
    }
    static Task<> outer(Engine& e) { co_await inner(e); }
  };
  Engine eng;
  eng.spawn(Thrower::outer(eng));
  EXPECT_THROW(eng.run(), std::runtime_error);
}

TEST(Engine, MultipleProcessesInterleave) {
  Engine eng;
  std::vector<std::pair<int, Time>> log;
  auto proc = [](Engine& e, std::vector<std::pair<int, Time>>& log, int id,
                 Time step) -> Task<> {
    for (int i = 0; i < 3; ++i) {
      co_await e.delay(step);
      log.emplace_back(id, e.now());
    }
  };
  eng.spawn(proc(eng, log, 1, Time::us(2)));
  eng.spawn(proc(eng, log, 2, Time::us(3)));
  eng.run();
  ASSERT_EQ(log.size(), 6u);
  // Process 1 ticks at 2,4,6; process 2 at 3,6,9. At t=6 process 2 runs
  // first: its event was scheduled earlier (at t=3) than process 1's (t=4).
  EXPECT_EQ(log[0], (std::pair{1, Time::us(2)}));
  EXPECT_EQ(log[1], (std::pair{2, Time::us(3)}));
  EXPECT_EQ(log[2], (std::pair{1, Time::us(4)}));
  EXPECT_EQ(log[3], (std::pair{2, Time::us(6)}));
  EXPECT_EQ(log[4], (std::pair{1, Time::us(6)}));
  EXPECT_EQ(log[5], (std::pair{2, Time::us(9)}));
}

TEST(Engine, RunUntilStopsAtDeadline) {
  Engine eng;
  int ticks = 0;
  eng.spawn([](Engine& e, int& t) -> Task<> {
    for (int i = 0; i < 100; ++i) {
      co_await e.delay(Time::us(1));
      ++t;
    }
  }(eng, ticks));
  EXPECT_FALSE(eng.run_until(Time::us(10)));
  EXPECT_EQ(ticks, 10);
  EXPECT_TRUE(eng.run_until(Time::ms(1)));
  EXPECT_EQ(ticks, 100);
}

TEST(Engine, TimeLimitConvertsOverrunIntoLivelockError) {
  // Unlike run_until (which parks cleanly at the deadline), the time
  // limit is a watchdog: crossing it is an error carrying a diagnostic
  // of where the clock stood and what was still pending.
  Engine eng;
  eng.set_time_limit(Time::us(10));
  int ran = 0;
  eng.at(Time::us(5), [&] { ++ran; });
  eng.at(Time::us(20), [&] { ++ran; });
  try {
    eng.run();
    FAIL() << "expected LivelockError";
  } catch (const LivelockError& e) {
    const std::string r = e.report();
    EXPECT_NE(r.find("time limit"), std::string::npos) << r;
    EXPECT_NE(r.find("next event at"), std::string::npos) << r;
  }
  EXPECT_EQ(ran, 1);  // the in-horizon event ran, the overrun one did not
}

TEST(Engine, EventLimitCatchesLiveLock) {
  // A self-rescheduling poller never drains the queue; the event budget
  // must convert the live-lock into an error instead of spinning forever.
  Engine eng;
  eng.set_event_limit(10'000);
  std::function<void()> poll = [&] { eng.after(Time::ns(100), poll); };
  eng.after(Time::zero(), poll);
  EXPECT_THROW(eng.run(), EventLimitError);
  EXPECT_GE(eng.events_processed(), 10'000u);
}

// --- cancellable timers (retransmit-timer support) --------------------------

TEST(EngineCancel, CancelledEventNeverRunsAndClockSkipsIt) {
  Engine eng;
  bool near_ran = false, far_ran = false;
  eng.after(Time::us(1), [&] { near_ran = true; });
  const EventId id =
      eng.at_cancellable(Time::us(100), [&] { far_ran = true; });
  EXPECT_TRUE(eng.cancel(id));
  eng.run();
  EXPECT_TRUE(near_ran);
  EXPECT_FALSE(far_ran);
  // The tombstone is skipped without advancing the clock to us(100).
  EXPECT_EQ(eng.now(), Time::us(1));
  EXPECT_EQ(eng.events_processed(), 1u);
  EXPECT_EQ(eng.events_cancelled(), 1u);
}

TEST(EngineCancel, CancelFromInsideAnEarlierEvent) {
  // The retransmit-timer shape: deliver fires first and retires the timer.
  Engine eng;
  bool timer_fired = false;
  const EventId rto =
      eng.at_cancellable(Time::us(50), [&] { timer_fired = true; });
  eng.after(Time::us(2), [&] { EXPECT_TRUE(eng.cancel(rto)); });
  eng.run();
  EXPECT_FALSE(timer_fired);
  EXPECT_EQ(eng.now(), Time::us(2));
}

TEST(EngineCancel, BoxedClosureIsFreedAtCancelNotAtRun) {
  // A capturing closure is boxed on the heap; cancel must release it
  // immediately (the armed-timer payload may hold flow references).
  Engine eng;
  auto payload = std::make_shared<int>(42);
  std::weak_ptr<int> watch = payload;
  const EventId id =
      eng.at_cancellable(Time::us(10), [payload] { (void)*payload; });
  payload.reset();
  EXPECT_FALSE(watch.expired());  // alive inside the armed event
  EXPECT_TRUE(eng.cancel(id));
  EXPECT_TRUE(watch.expired());  // freed by the cancel itself
  eng.run();
}

TEST(EngineCancel, DoubleCancelReturnsFalse) {
  Engine eng;
  const EventId id = eng.at_cancellable(Time::us(1), [] {});
  EXPECT_TRUE(eng.cancel(id));
  EXPECT_FALSE(eng.cancel(id));
  eng.run();
}

TEST(EngineCancel, CancelAfterFireReturnsFalse) {
  Engine eng;
  int runs = 0;
  const EventId id = eng.at_cancellable(Time::us(1), [&] { ++runs; });
  eng.run();
  EXPECT_EQ(runs, 1);
  EXPECT_FALSE(eng.cancel(id));
}

TEST(EngineCancel, StaleIdDoesNotKillSlotReuser) {
  // ABA safety: after the original event fires, its slab slot is recycled;
  // a stale EventId kept from the first occupant must not cancel (or
  // double-free) the new one.
  Engine eng;
  const EventId stale = eng.at_cancellable(Time::us(1), [] {});
  eng.run();
  bool second_ran = false;
  // LIFO free list: this reuses the just-freed slot.
  const EventId fresh =
      eng.at_cancellable(Time::us(2), [&] { second_ran = true; });
  EXPECT_EQ(stale.slot, fresh.slot);
  EXPECT_FALSE(eng.cancel(stale));
  eng.run();
  EXPECT_TRUE(second_ran);
}

TEST(EngineCancel, InvalidIdIsRejected) {
  Engine eng;
  EXPECT_FALSE(eng.cancel(EventId{}));
  EXPECT_FALSE(eng.cancel(EventId{.slot = 12345, .seq = 7}));
}

TEST(EngineCancel, PendingEventsExcludesTombstones) {
  Engine eng;
  eng.after(Time::us(1), [] {});
  const EventId id = eng.at_cancellable(Time::us(2), [] {});
  EXPECT_EQ(eng.pending_events(), 2u);
  eng.cancel(id);
  EXPECT_EQ(eng.pending_events(), 1u);
  eng.run();
  EXPECT_EQ(eng.pending_events(), 0u);
}

TEST(EngineCancel, DropProcessesAndAuditsStayCleanWithArmedTimersCancelled) {
  // The finalize audit demands zero parked tombstones; a run that cancels
  // armed timers (and one that drops everything mid-flight) must both
  // come out clean.
  Engine eng;
  for (int i = 0; i < 8; ++i) {
    const EventId id = eng.at_cancellable(Time::us(10 + i), [] {});
    if (i % 2 == 0) eng.cancel(id);
  }
  eng.run();  // odd timers fire, even tombstones are skipped
  mns::audit::AuditReport report;
  eng.register_audits(report);
  EXPECT_NO_THROW(report.require_clean());

  // Now cancel armed timers and abandon the rest via drop_processes.
  Engine eng2;
  const EventId armed = eng2.at_cancellable(Time::us(5), [] {});
  eng2.at_cancellable(Time::us(6), [] {});
  eng2.cancel(armed);
  eng2.drop_processes();
  mns::audit::AuditReport report2;
  eng2.register_audits(report2);
  EXPECT_NO_THROW(report2.require_clean());
}

TEST(Cpu, AccountsComputeAndOverhead) {
  Engine eng;
  Cpu cpu(eng);
  eng.spawn([](Engine& e, Cpu& c) -> Task<> {
    co_await c.compute(Time::us(10));
    {
      MpiScope scope(c);
      EXPECT_TRUE(c.in_mpi());
      co_await c.busy(Time::us(2));
    }
    EXPECT_FALSE(c.in_mpi());
    co_await e.delay(Time::us(5));  // blocked, not busy
  }(eng, cpu));
  eng.run();
  EXPECT_EQ(cpu.compute_time(), Time::us(10));
  EXPECT_EQ(cpu.overhead_time(), Time::us(2));
  EXPECT_EQ(eng.now(), Time::us(17));
}

TEST(Cpu, NestedMpiScopes) {
  Engine eng;
  Cpu cpu(eng);
  {
    MpiScope a(cpu);
    EXPECT_TRUE(cpu.in_mpi());
    {
      MpiScope b(cpu);
      EXPECT_TRUE(cpu.in_mpi());
    }
    EXPECT_TRUE(cpu.in_mpi());
  }
  EXPECT_FALSE(cpu.in_mpi());
}

// Property test for the event queue: under randomized schedules mixing
// zero-delay events (now-queue) with future events (4-ary heap), pops
// must come out in strict (time, schedule-order) order. The schedule
// counter here mirrors the engine's own seq assignment: one per at()
// call, in call order.
TEST(Engine, PopOrderPropertyUnderRandomizedSchedules) {
  std::mt19937_64 rng(0xC0FFEE);
  for (int round = 0; round < 10; ++round) {
    Engine eng;
    std::vector<std::pair<std::int64_t, std::uint64_t>> pops;
    std::uint64_t sched = 0;
    std::function<void(int)> plant = [&](int depth) {
      const std::uint64_t my = sched++;
      // 1-in-3 events land at exactly now() (the FIFO fast path); the
      // rest spread over a window wide enough to force deep heap sifts.
      const std::int64_t delay_ps =
          rng() % 3 == 0 ? 0 : static_cast<std::int64_t>(rng() % 50'000);
      eng.after(Time::ps(delay_ps), [&, my, depth] {
        pops.emplace_back(eng.now().count_ps(), my);
        if (depth < 3) {
          const int kids = static_cast<int>(rng() % 3);
          for (int k = 0; k < kids; ++k) plant(depth + 1);
        }
      });
    };
    for (int i = 0; i < 300; ++i) plant(0);
    eng.run();

    ASSERT_GE(pops.size(), 300u);
    for (std::size_t i = 1; i < pops.size(); ++i) {
      ASSERT_GE(pops[i].first, pops[i - 1].first)
          << "time regressed at pop " << i << " (round " << round << ")";
      if (pops[i].first == pops[i - 1].first) {
        ASSERT_GT(pops[i].second, pops[i - 1].second)
            << "equal-time events out of schedule order at pop " << i
            << " (round " << round << ")";
      }
    }
  }
}

// ---------------------------------------------------------------------------
// next_event_at_ps / step_one: the single-stepping surface the PDES
// executor drives the engine through.

TEST(EngineStep, NextEventTimeReportsQueueHead) {
  Engine eng;
  EXPECT_EQ(eng.next_event_at_ps(), INT64_MAX);
  eng.after(Time::us(3), [] {});
  eng.after(Time::us(1), [] {});
  EXPECT_EQ(eng.next_event_at_ps(), Time::us(1).count_ps());
  EXPECT_TRUE(eng.step_one());
  EXPECT_EQ(eng.next_event_at_ps(), Time::us(3).count_ps());
  EXPECT_TRUE(eng.step_one());
  EXPECT_EQ(eng.next_event_at_ps(), INT64_MAX);
  EXPECT_FALSE(eng.step_one());
}

TEST(EngineStep, NextEventTimePurgesTombstones) {
  Engine eng;
  const EventId a = eng.at_cancellable(Time::us(1), EventFn::make([] {}));
  const EventId b = eng.at_cancellable(Time::us(2), EventFn::make([] {}));
  int ran = 0;
  eng.after(Time::us(5), [&] { ++ran; });
  ASSERT_TRUE(eng.cancel(a));
  ASSERT_TRUE(eng.cancel(b));
  // The two cancelled heads must be skipped, not reported.
  EXPECT_EQ(eng.next_event_at_ps(), Time::us(5).count_ps());
  EXPECT_TRUE(eng.step_one());
  EXPECT_EQ(ran, 1);
}

TEST(EngineStep, NowQueueEventsReportCurrentTime) {
  Engine eng;
  std::int64_t seen = -1;
  eng.after(Time::us(2), [&] {
    eng.after(Time::zero(), [] {});  // lands in the now-queue at t = 2us
    seen = eng.next_event_at_ps();
  });
  eng.run();
  EXPECT_EQ(seen, Time::us(2).count_ps());
}

TEST(EngineStep, StepOneRethrowsHandlerFailure) {
  Engine eng;
  eng.after(Time::us(1), [] { throw std::runtime_error("boom"); });
  EXPECT_THROW(eng.step_one(), std::runtime_error);
}

// Regression: a cancelled event sitting at the queue head inside the
// deadline used to let run_until() enter step(), which skips tombstones
// and would execute the next *live* event even if it lay beyond the
// deadline.
TEST(Engine, RunUntilIgnoresCancelledHeadAtDeadline) {
  Engine eng;
  const EventId ghost =
      eng.at_cancellable(Time::us(5), EventFn::make([] {}));
  bool late_ran = false;
  eng.after(Time::us(20), [&] { late_ran = true; });
  ASSERT_TRUE(eng.cancel(ghost));
  EXPECT_FALSE(eng.run_until(Time::us(10)));
  EXPECT_FALSE(late_ran) << "event beyond the deadline executed";
  EXPECT_TRUE(eng.run_until(Time::us(30)));
  EXPECT_TRUE(late_ran);
}

// ---------------------------------------------------------------------------
// LadderQueue: property-checked against a sorted reference under
// randomized interleavings of pushes and pops, including full drains
// (stale-boundary paths) and same-time keys distinguished only by seq.
// Compiled directly so the policy is covered even in heap-policy builds.

TEST(LadderQueue, MatchesSortedReferenceUnderRandomizedTraffic) {
  std::mt19937_64 rng(0xBADCAFE);
  for (int round = 0; round < 20; ++round) {
    LadderQueue<EventKey> lq;
    std::vector<EventKey> ref_keys;
    std::vector<std::uint32_t> ref_slots;
    std::uint64_t seq = 0;
    std::int64_t clock = 0;
    std::size_t popped = 0;
    auto ref_min = [&]() -> std::size_t {
      std::size_t best = SIZE_MAX;
      for (std::size_t i = 0; i < ref_keys.size(); ++i) {
        if (ref_slots[i] == UINT32_MAX) continue;
        if (best == SIZE_MAX || ref_keys[i].before(ref_keys[best])) best = i;
      }
      return best;
    };
    for (int op = 0; op < 2000; ++op) {
      const bool do_push = lq.empty() || rng() % 5 != 0;
      if (do_push) {
        // Mix monotone far-future pushes, near-horizon inserts, and
        // same-instant keys (seq tie-break only).
        const std::uint64_t r = rng();
        const std::int64_t at =
            clock + static_cast<std::int64_t>(r % 4 == 0 ? 0 : r % 10'000);
        const EventKey k = EventKey::make(at, seq++);
        const auto slot = static_cast<std::uint32_t>(op);
        lq.push(k, slot);
        ref_keys.push_back(k);
        ref_slots.push_back(slot);
      } else {
        const int burst = 1 + static_cast<int>(rng() % 7);
        for (int i = 0; i < burst && !lq.empty(); ++i) {
          const auto e = lq.pop();
          const std::size_t want = ref_min();
          ASSERT_NE(want, SIZE_MAX);
          ASSERT_FALSE(e.key.before(ref_keys[want]) ||
                       ref_keys[want].before(e.key))
              << "pop key mismatch (round " << round << " op " << op << ")";
          ASSERT_EQ(e.slot, ref_slots[want]);
          ref_slots[want] = UINT32_MAX;
          clock = e.key.at_ps();  // future pushes never precede pops
          ++popped;
        }
      }
    }
    while (!lq.empty()) {
      const auto e = lq.pop();
      const std::size_t want = ref_min();
      ASSERT_NE(want, SIZE_MAX);
      ASSERT_EQ(e.slot, ref_slots[want]);
      ref_slots[want] = UINT32_MAX;
      ++popped;
    }
    ASSERT_EQ(popped, ref_keys.size()) << "round " << round;
  }
}

}  // namespace
