#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/engine.hpp"
#include "sim/sync.hpp"

namespace {

using namespace mns::sim;

TEST(Trigger, ReleasesAllWaiters) {
  Engine eng;
  Trigger trig(eng);
  std::vector<int> done;
  auto waiter = [](Trigger& t, std::vector<int>& done, int id) -> Task<> {
    co_await t.wait();
    done.push_back(id);
  };
  eng.spawn(waiter(trig, done, 1));
  eng.spawn(waiter(trig, done, 2));
  eng.spawn([](Engine& e, Trigger& t) -> Task<> {
    co_await e.delay(Time::us(5));
    t.fire();
  }(eng, trig));
  eng.run();
  EXPECT_EQ(done, (std::vector<int>{1, 2}));
  EXPECT_EQ(eng.now(), Time::us(5));
}

TEST(Trigger, AwaitAfterFireIsImmediate) {
  Engine eng;
  Trigger trig(eng);
  trig.fire();
  trig.fire();  // idempotent
  Time when;
  eng.spawn([](Engine& e, Trigger& t, Time& when) -> Task<> {
    co_await e.delay(Time::us(3));
    co_await t.wait();
    when = e.now();
  }(eng, trig, when));
  eng.run();
  EXPECT_EQ(when, Time::us(3));
}

TEST(Trigger, ResetReuses) {
  Engine eng;
  Trigger trig(eng);
  trig.fire();
  trig.reset();
  EXPECT_FALSE(trig.fired());
}

TEST(Trigger, NeverFiredDeadlocks) {
  Engine eng;
  Trigger trig(eng);
  eng.spawn([](Trigger& t) -> Task<> { co_await t.wait(); }(trig));
  EXPECT_THROW(eng.run(), DeadlockError);
}

TEST(Mailbox, FifoDelivery) {
  Engine eng;
  Mailbox<int> mb(eng);
  std::vector<int> got;
  eng.spawn([](Mailbox<int>& mb, std::vector<int>& got) -> Task<> {
    for (int i = 0; i < 3; ++i) got.push_back(co_await mb.receive());
  }(mb, got));
  eng.spawn([](Engine& e, Mailbox<int>& mb) -> Task<> {
    mb.send(10);
    co_await e.delay(Time::us(1));
    mb.send(20);
    mb.send(30);
  }(eng, mb));
  eng.run();
  EXPECT_EQ(got, (std::vector<int>{10, 20, 30}));
}

TEST(Mailbox, DirectHandoffNotStolen) {
  // Receiver A waits first; a message sent to A must not be stolen by a
  // receiver B that polls between the send and A's resumption.
  Engine eng;
  Mailbox<std::string> mb(eng);
  std::string got_a, got_b;
  eng.spawn([](Mailbox<std::string>& mb, std::string& out) -> Task<> {
    out = co_await mb.receive();
  }(mb, got_a));
  eng.spawn([](Engine& e, Mailbox<std::string>& mb, std::string& out) -> Task<> {
    co_await e.delay(Time::us(1));
    mb.send("first");   // handed to A, resumption queued
    mb.send("second");  // queued
    out = co_await mb.receive();  // should see "second"
  }(eng, mb, got_b));
  eng.run();
  EXPECT_EQ(got_a, "first");
  EXPECT_EQ(got_b, "second");
}

TEST(Mailbox, ManyMessagesStress) {
  Engine eng;
  Mailbox<int> mb(eng);
  long sum = 0;
  const int n = 10000;
  eng.spawn([](Mailbox<int>& mb, long& sum, int n) -> Task<> {
    for (int i = 0; i < n; ++i) sum += co_await mb.receive();
  }(mb, sum, n));
  eng.spawn([](Engine& e, Mailbox<int>& mb, int n) -> Task<> {
    for (int i = 1; i <= n; ++i) {
      mb.send(i);
      if (i % 97 == 0) co_await e.delay(Time::ns(10));
    }
  }(eng, mb, n));
  eng.run();
  EXPECT_EQ(sum, static_cast<long>(n) * (n + 1) / 2);
}

TEST(Semaphore, LimitsConcurrency) {
  Engine eng;
  Semaphore sem(eng, 2);
  int active = 0, peak = 0;
  auto worker = [](Engine& e, Semaphore& s, int& active, int& peak) -> Task<> {
    co_await s.acquire();
    ++active;
    peak = std::max(peak, active);
    co_await e.delay(Time::us(10));
    --active;
    s.release();
  };
  for (int i = 0; i < 6; ++i) eng.spawn(worker(eng, sem, active, peak));
  eng.run();
  EXPECT_EQ(peak, 2);
  EXPECT_EQ(active, 0);
  EXPECT_EQ(sem.available(), 2u);
  // 6 workers, 2 at a time, 10us each => 30us.
  EXPECT_EQ(eng.now(), Time::us(30));
}

TEST(Semaphore, DirectHandoffNoOvergrant) {
  Engine eng;
  Semaphore sem(eng, 1);
  int holders = 0;
  bool violated = false;
  auto worker = [](Engine& e, Semaphore& s, int& holders,
                   bool& violated) -> Task<> {
    co_await s.acquire();
    ++holders;
    if (holders > 1) violated = true;
    co_await e.delay(Time::us(1));
    --holders;
    s.release();
  };
  for (int i = 0; i < 5; ++i) eng.spawn(worker(eng, sem, holders, violated));
  eng.run();
  EXPECT_FALSE(violated);
}

TEST(SimBarrier, AlignsProcesses) {
  Engine eng;
  SimBarrier bar(eng, 3);
  std::vector<Time> crossed;
  auto proc = [](Engine& e, SimBarrier& b, std::vector<Time>& out,
                 Time warmup) -> Task<> {
    co_await e.delay(warmup);
    co_await b.arrive_and_wait();
    out.push_back(e.now());
  };
  eng.spawn(proc(eng, bar, crossed, Time::us(1)));
  eng.spawn(proc(eng, bar, crossed, Time::us(7)));
  eng.spawn(proc(eng, bar, crossed, Time::us(3)));
  eng.run();
  ASSERT_EQ(crossed.size(), 3u);
  for (const auto t : crossed) EXPECT_EQ(t, Time::us(7));
}

TEST(SimBarrier, ReusableAcrossPhases) {
  Engine eng;
  SimBarrier bar(eng, 2);
  std::vector<int> phases;
  auto proc = [](Engine& e, SimBarrier& b, std::vector<int>& out,
                 Time step) -> Task<> {
    for (int phase = 0; phase < 3; ++phase) {
      co_await e.delay(step);
      co_await b.arrive_and_wait();
      out.push_back(phase);
    }
  };
  eng.spawn(proc(eng, bar, phases, Time::us(1)));
  eng.spawn(proc(eng, bar, phases, Time::us(2)));
  eng.run();
  EXPECT_EQ(phases, (std::vector<int>{0, 0, 1, 1, 2, 2}));
}

TEST(SimBarrier, SingleParticipantNeverBlocks) {
  Engine eng;
  SimBarrier bar(eng, 1);
  bool done = false;
  eng.spawn([](SimBarrier& b, bool& done) -> Task<> {
    co_await b.arrive_and_wait();
    done = true;
  }(bar, done));
  eng.run();
  EXPECT_TRUE(done);
}

}  // namespace
