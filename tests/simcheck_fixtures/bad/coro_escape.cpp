// known-bad: a coroutine lambda that captures by reference and escapes
// its enclosing frame via spawn(). The lambda object dies when start()
// returns; the coroutine frame built from it lives on — the captured
// reference dangles at the first suspension point.
#include <cstdint>

#include "fixture_prelude.hpp"

namespace fixbad {

void start(fix::Engine& eng) {
  std::int64_t local_budget = 100;
  eng.spawn([&]() -> fix::Task {
    co_await fix::sleep_ps(10);
    local_budget -= 1;  // dangling: start() has long returned
  });
}

}  // namespace fixbad
