// known-bad: allocation reachable from a hot-path root, both directly and
// through a callee two hops down the call graph. The fixture driver
// passes --hot-root 'HotMachine::step_event$' so step_event anchors the
// reachability scan.
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "fixture_prelude.hpp"

namespace fixbad {

struct Packet {
  std::uint32_t seq = 0;
};

struct HotMachine {
  std::vector<Packet> backlog;
  std::function<void(Packet)> hook;

  // BAD (direct): container growth + boxed std::function on the hot path.
  void step_event(Packet p) {
    backlog.push_back(p);                       // growth on hot path
    hook = [p](Packet q) { (void)p; (void)q; };  // std::function rebind
    stage(p);
  }

  void stage(Packet p) { commit(p); }

  // BAD (transitive): reached via step_event -> stage -> commit.
  void commit(Packet p) {
    auto* copy = new Packet(p);                  // raw new on hot path
    delete copy;
  }
};

}  // namespace fixbad
