// known-bad: mutable statics shared across engines. A partitioned (PDES)
// run would race on them or silently diverge; the audit reports each one
// with the handlers that reach it.
#include <cstdint>

#include "fixture_prelude.hpp"

namespace fixbad {

std::uint64_t g_event_count = 0;        // BAD: mutable namespace scope

struct Dispatcher {
  // Reaches g_event_count — listed in the handler's reached_by set when
  // step_event is configured as a hot root.
  void step_event() {
    g_event_count += 1;
    bump_local();
  }

  void bump_local() {
    static std::uint64_t calls = 0;     // BAD: mutable function-local
    calls += 1;
  }
};

// Mutable and shared, but no event handler reaches it: inventory +
// advisory note only — it must NOT gate until a handler path touches it.
std::uint64_t g_offline_tally = 0;

void offline_report() { g_offline_tally += 1; }

}  // namespace fixbad
