// known-bad: containers keyed on pointer types. Iteration order (ordered
// maps) or bucket order (unordered) then depends on host allocation
// addresses — different runs, different orders.
#include <map>
#include <set>
#include <unordered_map>

#include "fixture_prelude.hpp"

namespace fixbad {

struct Flow {
  int id = 0;
};

struct PtrKeyed {
  std::map<Flow*, int> credits;                   // BAD: ptr-key
  std::set<const Flow*> parked;                   // BAD: ptr-key
  std::unordered_map<Flow*, int> refcounts;       // BAD: ptr-key
};

int sum(PtrKeyed& p) {
  int total = 0;
  for (auto& [flow, credit] : p.credits) {
    total += credit + flow->id;
  }
  return total;
}

}  // namespace fixbad
