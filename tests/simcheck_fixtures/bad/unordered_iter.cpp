// known-bad: iteration over unordered containers whose loop body leaks the
// (host-hash-dependent) visit order into sim-visible state, one variant
// per leak class the rule knows.
#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "fixture_prelude.hpp"

namespace fixbad {

struct Ledger {
  std::unordered_map<std::uint64_t, int> balances;
  std::unordered_set<std::uint64_t> dirty;
  std::vector<std::uint64_t> log;
  std::uint64_t total = 0;

  // BAD: writes a member from inside the unordered loop — the member's
  // final value may be order-insensitive, but the per-step trace is not.
  void tally() {
    for (auto& [key, bal] : balances) {
      total += static_cast<std::uint64_t>(bal);
      log.push_back(key);
    }
  }

  // BAD: early exit — the element found depends on the visit order.
  std::uint64_t first_dirty() {
    for (auto key : dirty) {
      if (key % 2 == 0) {
        return key;
      }
    }
    return 0;
  }

  // BAD: a local written in the loop flows into the return value.
  std::uint64_t pick_any() {
    std::uint64_t best = 0;
    for (auto key : dirty) {
      best = key;
    }
    return best;
  }
};

}  // namespace fixbad
