// Shared scaffolding for the simcheck rule fixtures: a minimal coroutine
// task type and a tiny engine facade, just enough for the known-bad and
// known-good translation units to exercise each rule with both frontends
// (libclang parses this for real; the token frontend only needs the
// shapes). Deliberately dependency-free.
#pragma once

#include <coroutine>
#include <cstdint>
#include <utility>

#ifndef MNS_HOT
#if defined(__clang__)
#define MNS_HOT [[clang::annotate("mns_hot")]]
#else
#define MNS_HOT
#endif
#endif

namespace fix {

struct Task {
  struct promise_type {
    Task get_return_object() { return {}; }
    std::suspend_never initial_suspend() { return {}; }
    std::suspend_never final_suspend() noexcept { return {}; }
    void return_void() {}
    void unhandled_exception() {}
  };
};

struct Awaiter {
  bool await_ready() { return true; }
  void await_suspend(std::coroutine_handle<>) {}
  void await_resume() {}
};

inline Awaiter sleep_ps(std::int64_t) { return {}; }

struct Engine {
  // Defers the callable: the canonical frame-escape sink.
  template <class F>
  void spawn(F&&) {}
  // Drives the simulation to completion synchronously: same-frame.
  template <class F>
  void run(F&& f) { (void)f; }
};

}  // namespace fix
