// known-good: every same-frame coroutine-lambda idiom the rule must not
// flag — awaited in place, passed to the synchronous run() driver, and a
// by-value capture handed to spawn().
#include <cstdint>

#include "fixture_prelude.hpp"

namespace fixgood {

fix::Task awaited_in_place() {
  std::int64_t budget = 100;
  co_await [&]() -> fix::Task {
    budget -= 1;  // safe: the outer frame is suspended, not gone
    co_return;
  }();
}

void run_driver(fix::Engine& eng) {
  std::int64_t budget = 100;
  eng.run([&]() -> fix::Task {
    co_await fix::sleep_ps(10);
    budget -= 1;  // safe: run() drains the engine before returning
  });
}

void value_capture(fix::Engine& eng) {
  std::int64_t budget = 100;
  eng.spawn([budget]() -> fix::Task {
    co_await fix::sleep_ps(10);
    (void)budget;  // safe: captured by value, lives in the frame
  });
}

}  // namespace fixgood
