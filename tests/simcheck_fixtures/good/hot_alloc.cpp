// known-good: the hot path is allocation-free; the one amortized growth
// site lives behind an MNS_HOT-annotated boundary (whose own body is
// exempt but whose callees are still checked — refill() proves the
// checker keeps descending without flagging clean code).
#include <cstdint>
#include <vector>

#include "fixture_prelude.hpp"

namespace fixgood {

struct Packet {
  std::uint32_t seq = 0;
};

struct HotMachine {
  std::vector<Packet> pool;
  std::vector<std::uint32_t> free_slots;
  std::uint64_t delivered = 0;

  // Hot root (--hot-root 'HotMachine::step_event$'): recycles pooled
  // slots, counts, calls only allocation-free or annotated callees.
  void step_event(Packet p) {
    delivered += 1;
    pool[free_slots.back()] = p;
    acquire_slot();
  }

  // MNS_HOT: audited boundary — the pool grows amortized on warm-up and
  // recycles thereafter. Own-body growth is exempt by contract.
  MNS_HOT void acquire_slot() {
    if (free_slots.empty()) {
      free_slots.push_back(static_cast<std::uint32_t>(pool.size()));
      pool.push_back(Packet{});
      refill();
    }
  }

  // Callee of an MNS_HOT function: still checked (and clean).
  void refill() { delivered += 0; }
};

}  // namespace fixgood
