// known-good: every static here is either immutable after init,
// per-thread (reported as info, not an error), or explicitly
// simcheck-allow'd with the allow on the line ABOVE the declaration —
// which also pins the line-above suppression semantics.
#include <cstdint>

#include "fixture_prelude.hpp"

namespace fixgood {

constexpr std::uint64_t kTickPs = 1000;             // OK: constexpr
const std::uint64_t kWindow = kTickPs * 8;          // OK: const

thread_local std::uint64_t t_scratch = 0;           // info only: per-thread

// simcheck-allow: pdes-state
std::uint64_t g_debug_poke_count = 0;               // allowed above

struct Dispatcher {
  std::uint64_t handled = 0;                        // member, not static

  void step_event() {
    handled += 1;
    t_scratch += 1;
  }
};

}  // namespace fixgood
