// known-good: the same shapes as bad/ptr_key.cpp with stable keys —
// integer ids and canonicalized u64s — which is exactly the remediation
// the rule's message prescribes.
#include <cstdint>
#include <map>
#include <set>
#include <unordered_map>

#include "fixture_prelude.hpp"

namespace fixgood {

struct Flow {
  int id = 0;
};

struct IdKeyed {
  std::map<std::uint32_t, int> credits;            // keyed on slot index
  std::set<std::uint32_t> parked;
  std::unordered_map<std::uint64_t, int> refcounts;  // canonical u64 key
};

int sum(IdKeyed& p) {
  int total = 0;
  for (auto& [slot, credit] : p.credits) {         // ordered: fine to scan
    total += credit + static_cast<int>(slot);
  }
  return total;
}

}  // namespace fixgood
