// known-good: unordered iteration whose body is provably order-blind —
// a commutative fold into a local that never leaves the function. This
// mirrors the audit sweeps in src/ (sum bytes, count entries) that must
// stay legal.
#include <cstdint>
#include <unordered_map>
#include <unordered_set>

#include "fixture_prelude.hpp"

namespace fixgood {

struct Ledger {
  std::unordered_map<std::uint64_t, int> balances;
  std::unordered_set<std::uint64_t> dirty;

  // OK: commutative sum into a local, no early exit, nothing escapes.
  void audit() const {
    std::uint64_t sum = 0;
    for (const auto& [key, bal] : balances) {
      sum += static_cast<std::uint64_t>(bal);
    }
    (void)sum;
  }

  // OK: point lookups — no iteration at all.
  bool is_dirty(std::uint64_t key) const {
    return dirty.find(key) != dirty.end();
  }
};

}  // namespace fixgood
