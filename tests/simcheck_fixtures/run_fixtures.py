#!/usr/bin/env python3
"""Fixture driver for simcheck: proves every rule fires on the known-bad
translation units and stays silent on the known-good ones.

pytest-style test_* functions, but runnable with plain python3 (ctest
invokes this file directly; pytest is not a dependency). Each test runs
the real CLI as a subprocess against a synthetic compile_commands.json
spanning one fixture group, with the default hot roots replaced by the
fixtures' own (`HotMachine::step_event`, `Dispatcher::step_event`).

The fallback frontend is exercised always; the libclang frontend is
exercised additionally whenever the bindings load on this host.
"""

from __future__ import annotations

import json
import subprocess
import sys
import tempfile
from pathlib import Path

FIXTURES = Path(__file__).resolve().parent
REPO = FIXTURES.parent.parent
CLI = REPO / "tools" / "simcheck" / "cli.py"
HOT_ROOTS = ["HotMachine::step_event$", "Dispatcher::step_event$"]


def frontends() -> list[str]:
    fes = ["fallback"]
    sys.path.insert(0, str(REPO / "tools"))
    try:
        from simcheck import parse_clang
        if parse_clang.available():
            fes.append("clang")
    except Exception:
        pass
    return fes


def write_compdb(tmp: Path, group: Path) -> Path:
    entries = [{
        "directory": str(tmp),
        "file": str(cpp),
        "arguments": ["clang++", "-std=c++20", f"-I{FIXTURES}",
                      "-c", str(cpp)],
    } for cpp in sorted(group.glob("*.cpp"))]
    assert entries, f"no fixture sources in {group}"
    cc = tmp / f"compile_commands_{group.name}.json"
    cc.write_text(json.dumps(entries, indent=2), encoding="utf-8")
    return cc


def run_simcheck(group_name: str, frontend: str, tmp: Path):
    group = FIXTURES / group_name
    cc = write_compdb(tmp, group)
    findings_path = tmp / f"findings_{group_name}_{frontend}.json"
    state_path = tmp / f"state_{group_name}_{frontend}.json"
    cmd = [sys.executable, str(CLI),
           "--compile-commands", str(cc),
           "--root", str(group),
           "--frontend", frontend,
           "--no-default-hot-roots",
           "--findings-json", str(findings_path),
           "--state-json", str(state_path),
           "--quiet"]
    for hr in HOT_ROOTS:
        cmd += ["--hot-root", hr]
    proc = subprocess.run(cmd, capture_output=True, text=True)
    assert proc.returncode in (0, 1), (
        f"simcheck crashed ({proc.returncode}) on {group_name}/{frontend}:"
        f"\n{proc.stdout}\n{proc.stderr}")
    findings = json.loads(findings_path.read_text(encoding="utf-8"))
    state = json.loads(state_path.read_text(encoding="utf-8"))
    return proc.returncode, findings, state


def in_file(findings, rule: str, basename: str, severity: str = "error"):
    return [f for f in findings
            if f["rule"] == rule and f["severity"] == severity
            and Path(f["file"]).name == basename]


def test_bad_fixtures_fire_every_rule(frontend: str, tmp: Path) -> None:
    rc, findings, state = run_simcheck("bad", frontend, tmp)
    assert rc == 1, f"expected exit 1 on bad/ ({frontend}), got {rc}"

    ptr = in_file(findings, "ptr-key", "ptr_key.cpp")
    assert len(ptr) == 3, f"ptr-key: want 3 findings, got {ptr}"

    uit = in_file(findings, "unordered-iter", "unordered_iter.cpp")
    assert len(uit) >= 3, f"unordered-iter: want >=3 findings, got {uit}"

    hot = in_file(findings, "hot-alloc", "hot_alloc.cpp")
    assert len(hot) >= 2, f"hot-alloc: want >=2 findings, got {hot}"
    assert any("new" in f["message"] or "commit" in (f["chain"] or "")
               for f in hot), f"hot-alloc: transitive new not found: {hot}"

    coro = in_file(findings, "coro-ref-escape", "coro_escape.cpp")
    assert len(coro) >= 1, f"coro-ref-escape: want >=1 finding, got {coro}"

    pdes = in_file(findings, "pdes-static", "pdes_static.cpp")
    assert len(pdes) == 2, f"pdes-static: want 2 errors, got {pdes}"

    # Handler-unreachable mutable statics are advisory, never gating.
    off = [f for f in in_file(findings, "pdes-static", "pdes_static.cpp",
                              "info")
           if "g_offline_tally" in f["message"]]
    assert len(off) == 1, f"unreached static should be info-only: {findings}"

    # The state inventory must list the shared counter and name the event
    # handler that reaches it.
    entry = next(s for s in state["statics"]
                 if s["name"].endswith("g_event_count"))
    assert entry["class"] == "mutable-shared", entry
    assert entry["gating"] is True, entry
    assert any(rb.endswith("Dispatcher::step_event")
               for rb in entry["reached_by"]), entry
    offline = next(s for s in state["statics"]
                   if s["name"].endswith("g_offline_tally"))
    assert offline["gating"] is False, offline
    assert state["summary"]["mutable_shared"] >= 3, state["summary"]
    assert state["summary"]["gating"] == 2, state["summary"]

    # The gate's verdict is recorded in the state json itself.
    assert state["verdict"]["rule"] == "pdes-static", state["verdict"]
    assert state["verdict"]["status"] == "fail", state["verdict"]
    assert state["verdict"]["gating_findings"] == 2, state["verdict"]


def test_good_fixtures_stay_silent(frontend: str, tmp: Path) -> None:
    rc, findings, state = run_simcheck("good", frontend, tmp)
    errors = [f for f in findings if f["severity"] == "error"]
    assert not errors, f"good/ must be error-free ({frontend}): {errors}"
    assert rc == 0, f"expected exit 0 on good/ ({frontend}), got {rc}"

    # thread_local is an info note, never an error.
    infos = in_file(findings, "pdes-static", "pdes_static.cpp", "info")
    assert any("t_scratch" in f["message"] for f in infos), (
        f"thread_local should surface as info: {findings}")

    # The line-above allow suppresses the finding but the variable still
    # shows up in the audited inventory.
    entry = next(s for s in state["statics"]
                 if s["name"].endswith("g_debug_poke_count"))
    assert entry["class"] == "mutable-shared", entry
    assert entry["allowed"] is True, entry
    assert entry["gating"] is False, entry

    # A clean tree records a passing verdict with zero gating findings.
    assert state["verdict"]["status"] == "pass", state["verdict"]
    assert state["verdict"]["gating_findings"] == 0, state["verdict"]


def test_missing_compdb_is_usage_error(frontend: str, tmp: Path) -> None:
    proc = subprocess.run(
        [sys.executable, str(CLI),
         "--compile-commands", str(tmp / "nope.json"),
         "--root", str(FIXTURES), "--frontend", frontend],
        capture_output=True, text=True)
    assert proc.returncode == 2, proc


def main() -> int:
    tests = [(name, fn) for name, fn in sorted(globals().items())
             if name.startswith("test_") and callable(fn)]
    failed = 0
    with tempfile.TemporaryDirectory(prefix="simcheck_fixtures_") as td:
        tmp = Path(td)
        for fe in frontends():
            for name, fn in tests:
                label = f"{name}[{fe}]"
                try:
                    fn(fe, tmp)
                except AssertionError as exc:
                    failed += 1
                    print(f"FAIL {label}: {exc}")
                else:
                    print(f"PASS {label}")
    if failed:
        print(f"{failed} fixture test(s) failed")
        return 1
    print("all simcheck fixture tests passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
