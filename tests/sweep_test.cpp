// SweepRunner: results come back in input order, are invariant to the
// jobs count (the --jobs bit-identity guarantee the bench harnesses rely
// on), and a failing point reports deterministically.
#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "sweep/sweep_runner.hpp"

namespace {

using namespace mns;
using cluster::Cluster;
using cluster::ClusterConfig;
using cluster::Net;

TEST(SweepRunner, ResultsComeBackInInputOrder) {
  for (int jobs : {1, 2, 8}) {
    auto out = sweep::SweepRunner(jobs).run_indexed(
        17, [](std::size_t i) { return i * i; });
    ASSERT_EQ(out.size(), 17u);
    for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i * i);
  }
}

// One simulated point: a private Engine/Cluster built and run entirely on
// whichever worker picks it up. Returning the final simulated clock in
// picoseconds makes the jobs=1 vs jobs=8 comparison exact (integer
// equality, no formatting in between).
std::int64_t ping_pong_point(std::size_t i) {
  ClusterConfig cfg{.nodes = 2, .net = static_cast<Net>(i % 3)};
  Cluster c(cfg);
  c.run([](mpi::Comm& comm) -> sim::Task<void> {
    const mpi::View buf =
        mpi::View::synth(0x1000 + static_cast<std::uint64_t>(comm.rank()), 64);
    for (int k = 0; k < 50; ++k) {
      if (comm.rank() == 0) {
        co_await comm.send(buf, 1, 0);
        co_await comm.recv(buf, 1, 0);
      } else {
        co_await comm.recv(buf, 0, 0);
        co_await comm.send(buf, 0, 0);
      }
    }
  });
  return c.engine().now().count_ps();
}

TEST(SweepRunner, SimulationResultsAreJobsCountInvariant) {
  const auto serial = sweep::SweepRunner(1).run_indexed(6, ping_pong_point);
  const auto parallel = sweep::SweepRunner(8).run_indexed(6, ping_pong_point);
  EXPECT_EQ(serial, parallel);
  // Same-net points must agree with each other too: each point got a
  // private cluster, so no state can bleed between them.
  EXPECT_EQ(serial[0], serial[3]);
  EXPECT_EQ(serial[1], serial[4]);
  EXPECT_EQ(serial[2], serial[5]);
}

TEST(SweepRunner, SingleFailingPointRethrowsItsException) {
  for (int jobs : {1, 4}) {
    try {
      sweep::SweepRunner(jobs).run_indexed(8, [](std::size_t i) {
        if (i == 2) throw std::runtime_error("point 2 exploded");
        return i;
      });
      FAIL() << "expected the point's exception (jobs=" << jobs << ")";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "point 2 exploded");
    }
  }
}

}  // namespace
