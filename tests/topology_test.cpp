// Fat-tree topology: correctness and contention behaviour.
#include <gtest/gtest.h>

#include "cluster/cluster.hpp"
#include "model/topology.hpp"

namespace {

using namespace mns;
using cluster::Cluster;
using cluster::ClusterConfig;
using cluster::Net;
using mpi::Comm;
using mpi::View;
using sim::Task;
using sim::Time;

ClusterConfig fat_tree_cfg(std::size_t nodes, std::size_t radix) {
  ClusterConfig cfg{.nodes = nodes, .net = Net::kInfiniBand};
  cfg.tweak_ib = [radix](ib::IbConfig& c) {
    c.switch_cfg.fat_tree_radix = radix;
  };
  return cfg;
}

TEST(FatTree, TrafficStillDeliversEverywhere) {
  Cluster c(fat_tree_cfg(16, 4));
  std::vector<int> got(16, -1);
  c.run([&got](Comm& comm) -> Task<> {
    // All-to-one + ring: crosses leaves in both directions.
    const int to = (comm.rank() + 5) % comm.size();
    const int from = (comm.rank() - 5 + comm.size()) % comm.size();
    int mine = comm.rank() * 3;
    int theirs = -1;
    co_await comm.sendrecv(View::in(&mine, 4), to, 0,
                           View::out(&theirs, 4), from, 0);
    got[static_cast<std::size_t>(comm.rank())] = theirs;
  });
  for (int r = 0; r < 16; ++r) EXPECT_EQ(got[r], ((r - 5 + 16) % 16) * 3);
}

TEST(FatTree, SameLeafAvoidsSpine) {
  // Latency within a leaf must be lower than across leaves (one extra
  // uplink + spine hop).
  Cluster c(fat_tree_cfg(8, 4));
  double same_us = 0, cross_us = 0;
  c.run([&](Comm& comm) -> Task<> {
    auto pingpong = [&](int peer, double& out) -> Task<> {
      const View buf = View::synth(0x100 + comm.rank(), 64);
      const double t0 = comm.wtime();
      for (int i = 0; i < 20; ++i) {
        if (comm.rank() == 0) {
          co_await comm.send(buf, peer, 0);
          co_await comm.recv(buf, peer, 0);
        } else if (comm.rank() == peer) {
          co_await comm.recv(buf, 0, 0);
          co_await comm.send(buf, 0, 0);
        }
      }
      if (comm.rank() == 0) out = (comm.wtime() - t0) / 40 * 1e6;
      co_await comm.barrier();
    };
    co_await pingpong(1, same_us);   // ranks 0,1 share leaf 0
    co_await pingpong(5, cross_us);  // rank 5 on leaf 1
  });
  EXPECT_GT(cross_us, same_us + 0.1);
}

TEST(FatTree, UplinkContentionUnderIncast) {
  // Four senders on one leaf blasting a node on another leaf share one
  // uplink: aggregate throughput must cap near the single link rate,
  // where the flat crossbar would only bottleneck at the receiver.
  auto incast_secs = [](std::size_t radix) {
    ClusterConfig cfg{.nodes = 8, .net = Net::kInfiniBand};
    cfg.tweak_ib = [radix](ib::IbConfig& c) {
      c.switch_cfg.fat_tree_radix = radix;
    };
    Cluster c(cfg);
    double secs = 0;
    c.run([&secs](Comm& comm) -> Task<> {
      const std::uint64_t bytes = 4 << 20;
      co_await comm.barrier();
      const double t0 = comm.wtime();
      if (comm.rank() < 4) {  // leaf 0 senders
        co_await comm.send(View::synth(0x100 + comm.rank(), bytes), 7, 0);
      } else if (comm.rank() == 7) {
        for (int i = 0; i < 4; ++i) {
          co_await comm.recv(View::synth(0x900 + i * 0x100, bytes),
                             mpi::kAnySource, 0);
        }
        secs = comm.wtime() - t0;
      }
      co_return;
    });
    return secs;
  };
  const double tree = incast_secs(4);
  const double xbar = incast_secs(0);
  // Both are receiver-bound here (one destination), so the tree should be
  // close to, and never faster than, the crossbar.
  EXPECT_GE(tree, xbar * 0.98);
}

TEST(FatTree, AllToAllSlowerThanCrossbar) {
  // Cross-leaf alltoall oversubscribes the uplinks: the fat tree must be
  // measurably slower than the flat crossbar at the same node count.
  auto alltoall_us = [](std::size_t radix) {
    ClusterConfig cfg{.nodes = 16, .net = Net::kInfiniBand};
    cfg.tweak_ib = [radix](ib::IbConfig& c) {
      c.switch_cfg.fat_tree_radix = radix;
    };
    Cluster c(cfg);
    double us = 0;
    c.run([&us](Comm& comm) -> Task<> {
      co_await comm.barrier();
      const double t0 = comm.wtime();
      for (int i = 0; i < 5; ++i) {
        co_await comm.alltoall(View::synth(0x1000, 16 * (64 << 10)),
                               View::synth(0x900000, 16 * (64 << 10)),
                               64 << 10);
      }
      co_await comm.barrier();
      if (comm.rank() == 0) us = (comm.wtime() - t0) / 5 * 1e6;
    });
    return us;
  };
  const double xbar = alltoall_us(0);
  const double tree = alltoall_us(4);
  EXPECT_GT(tree, xbar * 1.3);
}

TEST(FatTree, ModelUnitRouting) {
  sim::Engine eng;
  model::SwitchConfig cfg{8, 1e9, Time::ns(100), 0};
  model::FatTree ft(eng, cfg, 8, 4);
  EXPECT_STREQ(ft.name(), "fat-tree");
  Time same, cross;
  eng.spawn([](sim::Engine& e, model::FatTree& ft, Time& same,
               Time& cross) -> Task<> {
    co_await ft.route(0, 1, 1000);  // same leaf: leaf hop only
    same = e.now();
    co_await ft.route(0, 5, 1000);  // cross leaf: up + spine + leaf
    cross = e.now() - same;
  }(eng, ft, same, cross));
  eng.run();
  EXPECT_EQ(same, Time::ns(1100));           // 1 us serialize + 100 ns
  EXPECT_EQ(cross, Time::ns(1100) * 3);      // three pipelined hops... not
  // quite: hops are sequential per packet: 3 x (1 us + 100 ns).
}

}  // namespace
