// Tracing and LogGP extraction.
#include <gtest/gtest.h>

#include <sstream>

#include "cluster/cluster.hpp"
#include "microbench/logp.hpp"
#include "prof/trace.hpp"

namespace {

using namespace mns;
using cluster::Cluster;
using cluster::ClusterConfig;
using cluster::Net;
using mpi::Comm;
using mpi::View;
using sim::Task;

TEST(Trace, RecordsTimelineAndMatrix) {
  ClusterConfig cfg{.nodes = 4, .net = Net::kInfiniBand};
  Cluster c(cfg);
  prof::Tracer tracer;
  c.mpi().set_tracer(&tracer);
  c.run([](Comm& comm) -> Task<> {
    const int to = (comm.rank() + 1) % comm.size();
    const int from = (comm.rank() - 1 + comm.size()) % comm.size();
    co_await comm.compute(20e-6);
    co_await comm.sendrecv(View::synth(0x10, 1000), to, 0,
                           View::synth(0x20, 1000), from, 0);
    co_await comm.barrier();
  });

  // Events: 4 computes, 4 sends + 4 recvs (sendrecv), 4 barriers.
  std::size_t computes = 0, sends = 0, recvs = 0, colls = 0;
  for (const auto& ev : tracer.events()) {
    EXPECT_GE(ev.t_end, ev.t_start);
    switch (ev.kind) {
      case prof::EventKind::kCompute: ++computes; break;
      case prof::EventKind::kSend: ++sends; break;
      case prof::EventKind::kRecv: ++recvs; break;
      case prof::EventKind::kCollective: ++colls; break;
      default: break;
    }
  }
  EXPECT_EQ(computes, 4u);
  EXPECT_EQ(sends, 4u);
  EXPECT_EQ(recvs, 4u);
  EXPECT_EQ(colls, 4u);

  const auto m = tracer.comm_matrix(4);
  for (int r = 0; r < 4; ++r) {
    EXPECT_EQ(m[r][(r + 1) % 4], 1000u);
    EXPECT_EQ(m[r][r], 0u);
  }

  const auto bd = tracer.breakdown(4);
  for (const auto& b : bd) {
    EXPECT_NEAR(b.compute_s, 20e-6, 1e-6);
    EXPECT_GT(b.mpi_s, 0.0);
    EXPECT_GE(b.total_s, b.compute_s + b.mpi_s - 1e-9);
  }

  std::ostringstream csv;
  tracer.write_csv(csv);
  EXPECT_NE(csv.str().find("t_start,t_end,rank,kind,op,peer,bytes"),
            std::string::npos);
  EXPECT_NE(csv.str().find("compute"), std::string::npos);
  EXPECT_NE(csv.str().find("Barrier"), std::string::npos);
}

TEST(Trace, DisabledByDefaultCostsNothing) {
  ClusterConfig cfg{.nodes = 2, .net = Net::kMyrinet};
  Cluster c(cfg);
  c.run([](Comm& comm) -> Task<> {
    if (comm.rank() == 0) {
      co_await comm.send(View::synth(1, 64), 1, 0);
    } else {
      co_await comm.recv(View::synth(2, 64), 0, 0);
    }
  });
  SUCCEED();  // no tracer installed: must simply not crash
}

TEST(LogGP, ParametersAreConsistent) {
  for (Net net : {Net::kInfiniBand, Net::kMyrinet, Net::kQuadrics}) {
    const auto p = microbench::extract_loggp(net);
    EXPECT_GT(p.os_us, 0.0) << net_name(net);
    EXPECT_GT(p.or_us, 0.0) << net_name(net);
    EXPECT_GT(p.L_us, 0.5) << net_name(net);
    // The gap cannot beat the per-message overhead.
    EXPECT_GE(p.g_us, p.os_us * 0.5) << net_name(net);
    EXPECT_GT(p.G_ns_per_byte, 0.0) << net_name(net);
  }
}

TEST(LogGP, GapPerByteTracksBandwidthOrdering) {
  const auto ib = microbench::extract_loggp(Net::kInfiniBand);
  const auto my = microbench::extract_loggp(Net::kMyrinet);
  const auto qs = microbench::extract_loggp(Net::kQuadrics);
  // G is the inverse bandwidth: IB < QSN < Myri.
  EXPECT_LT(ib.G_ns_per_byte, qs.G_ns_per_byte);
  EXPECT_LT(qs.G_ns_per_byte, my.G_ns_per_byte);
  // Overhead ordering mirrors Fig. 3: Myri < IB < QSN.
  EXPECT_LT(my.os_us + my.or_us, ib.os_us + ib.or_us);
  EXPECT_LT(ib.os_us + ib.or_us, qs.os_us + qs.or_us);
}

}  // namespace
