#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>
#include <stdexcept>

#include "util/bytes.hpp"
#include "util/flags.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using namespace mns::util;

TEST(Rng, Deterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a() == b());
  EXPECT_LT(same, 3);
}

TEST(Rng, BelowInRange) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(r.below(10), 10u);
  }
}

TEST(Rng, BelowRoughlyUniform) {
  Rng r(99);
  int counts[8] = {};
  const int n = 80000;
  for (int i = 0; i < n; ++i) ++counts[r.below(8)];
  for (int c : counts) {
    EXPECT_NEAR(c, n / 8, n / 8 / 5);  // within 20%
  }
}

TEST(Rng, UniformInUnitInterval) {
  Rng r(3);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Accumulator, Basics) {
  Accumulator acc;
  for (double x : {1.0, 2.0, 3.0, 4.0}) acc.add(x);
  EXPECT_EQ(acc.count(), 4u);
  EXPECT_DOUBLE_EQ(acc.mean(), 2.5);
  EXPECT_DOUBLE_EQ(acc.min(), 1.0);
  EXPECT_DOUBLE_EQ(acc.max(), 4.0);
  EXPECT_DOUBLE_EQ(acc.sum(), 10.0);
  EXPECT_NEAR(acc.variance(), 5.0 / 3.0, 1e-12);
}

TEST(Accumulator, MergeMatchesSequential) {
  Accumulator all, a, b;
  for (int i = 0; i < 50; ++i) {
    const double x = i * 0.37 - 3;
    all.add(x);
    (i % 2 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(Accumulator, MergeEmpty) {
  Accumulator a, b;
  a.add(5);
  a.merge(b);
  EXPECT_EQ(a.count(), 1u);
  b.merge(a);
  EXPECT_EQ(b.count(), 1u);
  EXPECT_DOUBLE_EQ(b.mean(), 5.0);
}

TEST(Samples, Percentiles) {
  Samples s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_NEAR(s.median(), 50.5, 1e-9);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 100.0);
  EXPECT_NEAR(s.percentile(0), 1.0, 1e-9);
  EXPECT_NEAR(s.percentile(100), 100.0, 1e-9);
}

TEST(Samples, EmptyThrows) {
  Samples s;
  EXPECT_THROW(s.percentile(50), std::logic_error);
}

TEST(SizeHistogram, PaperTable1Buckets) {
  SizeHistogram h;
  h.add(100, 5);        // < 2K
  h.add(4096, 2);       // 2K-16K
  h.add(65536, 3);      // 16K-1M
  h.add(2 << 20, 1);    // > 1M
  EXPECT_EQ(h.total_count(), 11u);
  EXPECT_EQ(h.count_in(0, 2048), 5u);
  EXPECT_EQ(h.count_in(2048, 16384), 2u);
  EXPECT_EQ(h.count_in(16384, 1 << 20), 3u);
  EXPECT_EQ(h.count_in(1 << 20, UINT64_MAX), 1u);
  EXPECT_EQ(h.bytes_in(2048, 16384), 8192u);
}

TEST(ParseSize, Suffixes) {
  EXPECT_EQ(parse_size("4"), 4u);
  EXPECT_EQ(parse_size("2K"), 2048u);
  EXPECT_EQ(parse_size("2k"), 2048u);
  EXPECT_EQ(parse_size("1M"), 1u << 20);
  EXPECT_EQ(parse_size("1G"), 1u << 30);
  EXPECT_THROW(parse_size(""), std::invalid_argument);
  EXPECT_THROW(parse_size("x"), std::invalid_argument);
  EXPECT_THROW(parse_size("4Q"), std::invalid_argument);
  EXPECT_THROW(parse_size("4KB"), std::invalid_argument);
}

TEST(SizeSweep, PowersOfTwo) {
  const auto sizes = size_sweep(4, 64);
  ASSERT_EQ(sizes.size(), 5u);
  EXPECT_EQ(sizes.front(), 4u);
  EXPECT_EQ(sizes.back(), 64u);
  EXPECT_THROW(size_sweep(0, 4), std::invalid_argument);
  EXPECT_THROW(size_sweep(8, 4), std::invalid_argument);
}

TEST(SizeLabel, Rendering) {
  EXPECT_EQ(size_label(4), "4");
  EXPECT_EQ(size_label(1024), "1K");
  EXPECT_EQ(size_label(65536), "64K");
  EXPECT_EQ(size_label(1 << 20), "1M");
  EXPECT_EQ(size_label(1000), "1000");
}

TEST(Flags, Parsing) {
  const char* argv[] = {"prog", "--net=ib",   "--nodes=8",
                        "--csv", "positional", "--size=64K"};
  Flags f(6, argv);
  EXPECT_EQ(f.get("net", ""), "ib");
  EXPECT_EQ(f.get_int("nodes", 0), 8);
  EXPECT_TRUE(f.get_bool("csv", false));
  EXPECT_EQ(f.get_size("size", 0), 65536u);
  ASSERT_EQ(f.positional().size(), 1u);
  EXPECT_EQ(f.positional()[0], "positional");
  f.reject_unknown();
}

TEST(Flags, RejectUnknown) {
  const char* argv[] = {"prog", "--node=8"};
  Flags f(2, argv);
  EXPECT_THROW(f.reject_unknown(), std::invalid_argument);
}

TEST(Flags, BadValues) {
  const char* argv[] = {"prog", "--n=abc", "--b=maybe"};
  Flags f(3, argv);
  EXPECT_THROW(f.get_int("n", 0), std::invalid_argument);
  EXPECT_THROW(f.get_bool("b", false), std::invalid_argument);
}

// The hardened numeric accessors must consume the whole value: trailing
// garbage ("8x") used to parse as 8 silently.
TEST(Flags, RejectsTrailingGarbageInNumbers) {
  const char* argv[] = {"prog", "--n=8x", "--d=1.5e", "--u=12junk"};
  Flags f(4, argv);
  EXPECT_THROW(f.get_int("n", 0), std::invalid_argument);
  EXPECT_THROW(f.get_double("d", 0.0), std::invalid_argument);
  EXPECT_THROW(f.get_uint("u", 0), std::invalid_argument);
}

TEST(Flags, UintRejectsNegativeSeed) {
  const char* argv[] = {"prog", "--seed=-3"};
  Flags f(2, argv);
  EXPECT_THROW(f.get_uint("seed", 1), std::invalid_argument);
}

// The CLI boundary every bench main runs through: a malformed --seed
// must become a clear stderr message and exit code 2, not an unhandled
// exception (exit code 134 / core dump) out of main.
TEST(FlagsDeath, MalformedSeedExitsWithCodeTwo) {
  auto bad_seed = [] {
    const char* argv[] = {"prog", "--seed=banana"};
    Flags f(2, argv);
    return static_cast<int>(f.get_uint("seed", 1));
  };
  EXPECT_EXIT(std::exit(run_cli(bad_seed)), ::testing::ExitedWithCode(2),
              "error: ");
}

TEST(FlagsDeath, UnknownFlagExitsWithCodeTwo) {
  auto typo = [] {
    const char* argv[] = {"prog", "--sede=7"};
    Flags f(2, argv);
    f.get_uint("seed", 1);
    f.reject_unknown();
    return 0;
  };
  EXPECT_EXIT(std::exit(run_cli(typo)), ::testing::ExitedWithCode(2),
              "error: ");
}

TEST(FlagsDeath, CleanRunPassesThroughReturnValue) {
  EXPECT_EQ(run_cli([] { return 0; }), 0);
  EXPECT_EQ(run_cli([] { return 7; }), 7);
}

TEST(Table, AlignedAndCsv) {
  Table t({"size", "lat_us"});
  t.row().add(std::uint64_t{4}).add(6.8, 1);
  t.row().add(std::uint64_t{1024}).add(12.25, 1);
  std::ostringstream txt, csv;
  t.print(txt);
  t.print_csv(csv);
  EXPECT_NE(txt.str().find("lat_us"), std::string::npos);
  EXPECT_NE(txt.str().find("6.8"), std::string::npos);
  EXPECT_EQ(csv.str(), "size,lat_us\n4,6.8\n1024,12.2\n");
  EXPECT_EQ(t.rows(), 2u);
}

}  // namespace
