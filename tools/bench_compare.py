#!/usr/bin/env python3
"""bench_compare: gate engine-performance regressions between two
google-benchmark JSON reports (BENCH_engine.json).

Usage:
    bench_compare.py BASELINE.json CURRENT.json [--threshold 0.30]
                     [--require NAME_REGEX ...]

Compares items_per_second for every benchmark present in BOTH reports
(aggregates like _mean/_median and benchmarks without an items/s counter
are skipped). A benchmark whose throughput dropped by more than the
threshold (default 30%, chosen to ride out CI-runner noise while still
catching real data-path regressions like an express-path fallback or a
per-packet allocation creeping back in) fails the run.

New benchmarks (in CURRENT only) are labelled "new, not compared" and
never fail — a benchmark added in the candidate has no baseline row and
the gate must not block adding it. Retired ones (BASELINE only) are
reported but never fail either. --require NAME_REGEX (repeatable) is
satisfied by any CURRENT benchmark with a usable items/s counter,
including brand-new ones: load-bearing benchmarks (e.g.
BM_RetransmitStorm, or a freshly added BM_PdesSweep3D64) must be
present in the candidate report, whether or not the baseline knows
them yet.

Exit status: 0 ok, 1 regression(s), 2 usage/IO error.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from pathlib import Path


def load_items_per_second(path: Path) -> dict[str, float]:
    try:
        report = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as e:
        print(f"bench_compare: cannot read {path}: {e}", file=sys.stderr)
        raise SystemExit(2)
    out: dict[str, float] = {}
    for b in report.get("benchmarks", []):
        if b.get("run_type", "iteration") != "iteration":
            continue  # _mean/_median/_stddev aggregates
        ips = b.get("items_per_second")
        name = b.get("name")
        if name and isinstance(ips, (int, float)) and ips > 0:
            out[name] = float(ips)
    return out


def main(argv: list[str]) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline", type=Path)
    ap.add_argument("current", type=Path)
    ap.add_argument("--threshold", type=float, default=0.30,
                    help="max tolerated fractional throughput drop "
                         "(default 0.30)")
    ap.add_argument("--require", action="append", default=[],
                    metavar="NAME_REGEX",
                    help="fail unless CURRENT contains a comparable "
                         "benchmark matching this regex (repeatable)")
    args = ap.parse_args(argv[1:])

    base = load_items_per_second(args.baseline)
    cur = load_items_per_second(args.current)

    # --require gates on the CURRENT report only: a new benchmark (no
    # baseline row yet) still satisfies its pattern.
    missing = [pat for pat in args.require
               if not any(re.search(pat, name) for name in cur)]
    if missing:
        for pat in missing:
            print(f"bench_compare: required benchmark missing from "
                  f"{args.current}: no name matches '{pat}'",
                  file=sys.stderr)
        return 1

    regressions = []
    new_count = 0
    width = max((len(n) for n in base.keys() | cur.keys()), default=0)
    for name in sorted(base.keys() | cur.keys()):
        if name not in base:
            new_count += 1
            print(f"  {name:<{width}}  {cur[name]:>14.0f} items/s  "
                  f"(new, not compared)")
            continue
        if name not in cur:
            print(f"  {name:<{width}}  RETIRED")
            continue
        ratio = cur[name] / base[name]
        verdict = "ok"
        if ratio < 1.0 - args.threshold:
            verdict = "REGRESSION"
            regressions.append((name, ratio))
        print(f"  {name:<{width}}  {base[name]:>14.0f} -> {cur[name]:>14.0f} "
              f"items/s  ({ratio:6.2%})  {verdict}")

    if regressions:
        print(f"bench_compare: {len(regressions)} benchmark(s) lost more "
              f"than {args.threshold:.0%} throughput", file=sys.stderr)
        return 1
    if not base:
        print(f"bench_compare: baseline has no comparable benchmarks; "
              f"{new_count} new benchmark(s) recorded, nothing to gate")
        return 0
    print("bench_compare: within threshold"
          + (f" ({new_count} new, not compared)" if new_count else ""))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
