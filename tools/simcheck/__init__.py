"""simcheck: semantic determinism analysis for the mpinetsim simulator.

Where tools/simlint.py enforces the determinism contract with per-line
regexes, simcheck reasons about *structure*: declarations and their types,
function bodies and the call graph, lambda captures and their escape
routes, statics and who reaches them. It ships the four rule families the
regexes cannot express:

  ptr-key          std::map/std::set (and unordered cousins) keyed on a
                   pointer type — iteration order then depends on host
                   addresses, the exact bug class mpi::Mpi::canon papers
                   over for regcache/MMU timings.
  unordered-iter   iteration over an unordered_* container whose loop body
                   can leak the (host-hash-dependent) visit order into
                   sim-visible state: writes to members/globals, mutating
                   sink calls, order-sensitive early exits, or locals that
                   flow into the return value.
  hot-alloc        call-graph allocation proof: everything reachable from
                   the MsgFlow packet machine, the fault Injector's verdict
                   paths and Engine::step must be transitively free of
                   operator new / std::function construction / container
                   growth. Functions that own an *intentional, audited*
                   allocation boundary (slab refill, amortized heap growth)
                   carry the MNS_HOT annotation: their own body is exempt,
                   their callees are still checked.
  pdes-static      PDES-readiness audit: every namespace-scope/static/
                   thread_local variable, classified (mutable / per-thread
                   / const-after-init), with the set of event handlers that
                   can reach it. Emitted as simcheck_state.json — the
                   shared-state worklist the partitioned-engine work will
                   consume. Mutable shared statics are findings; per-thread
                   and const-after-init state is reported but legal.

Two interchangeable frontends feed the same IR:

  clang     libclang (python clang.cindex) over compile_commands.json —
            real AST, types and scopes. Used when the bindings and a
            loadable libclang are present.
  fallback  a token/scope analyzer with no dependencies beyond the Python
            stdlib. Runs everywhere (CI stays green on minimal hosts),
            understands this codebase's idioms, and is what the fixture
            suite pins down rule by rule.

`python3 tools/simcheck/cli.py --help` for usage.
"""

__version__ = "1.0"
