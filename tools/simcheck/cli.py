"""simcheck command line.

    python3 tools/simcheck/cli.py --compile-commands build/compile_commands.json \
        --root src --state-json build/simcheck_state.json

Exit status: 0 clean (or only info notes), 1 error findings, 2 usage /
environment failure. --frontend auto prefers libclang when it loads and
silently falls back to the dependency-free token frontend otherwise, so
the check gates on every host."""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

if __package__ in (None, ""):  # direct invocation: bootstrap the package
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent))
    from simcheck import compdb, parse_fallback, report, rules  # type: ignore
    from simcheck import parse_clang  # type: ignore
else:
    from . import compdb, parse_clang, parse_fallback, report, rules


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="simcheck",
        description="semantic determinism analysis for mpinetsim")
    p.add_argument("--compile-commands", required=True, type=Path,
                   help="path to compile_commands.json")
    p.add_argument("--root", required=True, type=Path,
                   help="source root to analyze (files outside are ignored)")
    p.add_argument("--frontend", choices=("auto", "clang", "fallback"),
                   default="auto")
    p.add_argument("--state-json", type=Path, default=None,
                   help="write the PDES state inventory here")
    p.add_argument("--findings-json", type=Path, default=None,
                   help="write findings as JSON (for the fixture driver)")
    p.add_argument("--hot-root", action="append", default=[],
                   metavar="REGEX",
                   help="extra hot-path root (repeatable); replaces the "
                        "defaults when --no-default-hot-roots is given")
    p.add_argument("--no-default-hot-roots", action="store_true")
    p.add_argument("--quiet", action="store_true",
                   help="suppress the text report (JSON outputs still "
                        "written)")
    return p


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if not args.compile_commands.exists():
        print(f"simcheck: {args.compile_commands} not found — configure "
              "with -DCMAKE_EXPORT_COMPILE_COMMANDS=ON first",
              file=sys.stderr)
        return 2
    root = args.root.resolve()
    if not root.is_dir():
        print(f"simcheck: root {root} is not a directory", file=sys.stderr)
        return 2

    hot_roots = list(rules.DEFAULT_HOT_ROOTS)
    if args.no_default_hot_roots:
        hot_roots = []
    hot_roots += args.hot_root
    if not hot_roots:
        print("simcheck: no hot roots configured", file=sys.stderr)
        return 2

    frontend = args.frontend
    if frontend == "auto":
        frontend = "clang" if parse_clang.available() else "fallback"
    elif frontend == "clang" and not parse_clang.available():
        print("simcheck: --frontend clang requested but libclang is not "
              "loadable", file=sys.stderr)
        return 2

    if frontend == "clang":
        db = compdb.load_compdb(args.compile_commands)
        sm = parse_clang.parse_with_clang(db, root)
    else:
        inputs = compdb.collect_inputs(args.compile_commands, root)
        if not inputs:
            print(f"simcheck: no sources under {root} in "
                  f"{args.compile_commands}", file=sys.stderr)
            return 2
        sm = parse_fallback.parse_files(inputs)

    findings, inventory = rules.run_all(sm, hot_roots)

    if args.state_json:
        report.write_state_json(args.state_json, inventory, frontend,
                                hot_roots, findings)
    if args.findings_json:
        args.findings_json.write_text(report.findings_json(findings),
                                      encoding="utf-8")
    if not args.quiet:
        print(report.render_text(findings, frontend, len(sm.files),
                                 len(sm.functions)))
    return 1 if any(f.severity == "error" for f in findings) else 0


if __name__ == "__main__":
    raise SystemExit(main())
