"""compile_commands.json handling: enumerate the translation units under a
source root, plus the project headers they pull in, so both frontends see
the same file set."""

from __future__ import annotations

import json
import re
import shlex
from pathlib import Path

_INCLUDE_RE = re.compile(r'^\s*#\s*include\s*"([^"]+)"', re.MULTILINE)


def load_compdb(path: Path) -> list[dict]:
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as e:
        raise SystemExit(f"simcheck: cannot read {path}: {e}")
    if not isinstance(data, list):
        raise SystemExit(f"simcheck: {path} is not a compilation database")
    return data


def entry_args(entry: dict) -> list[str]:
    if "arguments" in entry:
        return list(entry["arguments"])
    return shlex.split(entry.get("command", ""))


def tu_sources(compdb: list[dict], root: Path) -> list[Path]:
    """Translation-unit sources from the database that live under root."""
    seen: set[Path] = set()
    out: list[Path] = []
    root = root.resolve()
    for entry in compdb:
        f = Path(entry.get("file", ""))
        if not f.is_absolute():
            f = Path(entry.get("directory", ".")) / f
        f = f.resolve()
        if f in seen or not f.exists():
            continue
        try:
            f.relative_to(root)
        except ValueError:
            continue
        seen.add(f)
        out.append(f)
    return sorted(out)


def project_headers(sources: list[Path], root: Path,
                    include_dirs: list[Path]) -> list[Path]:
    """Headers transitively reachable from `sources` via quoted includes,
    restricted to files under root. Keeps the fallback frontend honest:
    it sees exactly the project code the TUs compile."""
    root = root.resolve()
    seen: set[Path] = set()
    work = list(sources)
    headers: list[Path] = []
    while work:
        f = work.pop()
        if f in seen:
            continue
        seen.add(f)
        try:
            text = f.read_text(encoding="utf-8", errors="replace")
        except OSError:
            continue
        for inc in _INCLUDE_RE.findall(text):
            for base in [f.parent] + include_dirs:
                cand = (base / inc).resolve()
                if cand.exists():
                    try:
                        cand.relative_to(root)
                    except ValueError:
                        break
                    if cand not in seen:
                        headers.append(cand)
                        work.append(cand)
                    break
    return sorted(set(headers))


def include_dirs_of(compdb: list[dict]) -> list[Path]:
    dirs: list[Path] = []
    seen = set()
    for entry in compdb:
        args = entry_args(entry)
        base = Path(entry.get("directory", "."))
        i = 0
        while i < len(args):
            a = args[i]
            d = None
            if a == "-I" and i + 1 < len(args):
                d = args[i + 1]
                i += 1
            elif a.startswith("-I"):
                d = a[2:]
            if d:
                p = Path(d)
                if not p.is_absolute():
                    p = base / p
                p = p.resolve()
                if p not in seen:
                    seen.add(p)
                    dirs.append(p)
            i += 1
    return dirs


def collect_inputs(compdb_path: Path, root: Path) -> list[tuple[Path, str]]:
    """(path, display name) pairs: TU sources + project headers, with
    display names relative to root."""
    db = load_compdb(compdb_path)
    srcs = tu_sources(db, root)
    incs = include_dirs_of(db)
    hdrs = project_headers(srcs, root, incs)
    out = []
    for p in sorted(set(srcs) | set(hdrs)):
        out.append((p, p.relative_to(root.resolve()).as_posix()))
    return out
