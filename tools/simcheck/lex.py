"""Lexical layer shared by the fallback frontend: comment/string stripping
(preserving line structure), suppression-comment harvesting, and a small
C++ tokenizer that keeps line numbers.

The stripping pass mirrors tools/simlint.py so both tools agree on what a
suppression comment blesses: a trailing `// simcheck-allow: rule` covers
its own line; a comment alone on its line covers the line below."""

from __future__ import annotations

import re
from dataclasses import dataclass

ALLOW_RE = re.compile(r"simcheck-allow:\s*([\w-]+)")


def strip_and_harvest(text: str) -> tuple[str, dict[int, set[str]]]:
    """Blank comments, string and char literals; collect simcheck-allow
    suppressions per line. An allow comment blesses its own line and the
    next code line below it (comment-only lines in between don't break
    the chain) — the same semantics as tools/simlint.py."""
    out: list[str] = []
    allows: dict[int, set[str]] = {}
    pending: list[tuple[int, str]] = []
    i, n = 0, len(text)
    line = 1

    def record(comment: str, line_no: int) -> None:
        for m in ALLOW_RE.finditer(comment):
            allows.setdefault(line_no, set()).add(m.group(1))
            pending.append((line_no, m.group(1)))

    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            j = text.find("\n", i)
            j = n if j == -1 else j
            record(text[i:j], line)
            out.append(" " * (j - i))
            i = j
        elif c == "/" and nxt == "*":
            j = text.find("*/", i + 2)
            j = n if j == -1 else j + 2
            comment = text[i:j]
            end_line = line + comment.count("\n")
            record(comment, end_line)
            out.append("".join(ch if ch == "\n" else " " for ch in comment))
            line = end_line
            i = j
        elif c in "\"'":
            quote = c
            j = i + 1
            while j < n and text[j] != quote:
                j += 2 if text[j] == "\\" else 1
            j = min(j + 1, n)
            literal = text[i:j]
            if len(literal) >= 2 and literal[-1] == quote:
                out.append(quote + "".join(
                    ch if ch == "\n" else " " for ch in literal[1:-1]) + quote)
            else:
                out.append(literal)
            line += literal.count("\n")
            i = j
        else:
            if c == "\n":
                line += 1
            out.append(c)
            i += 1
    stripped = _blank_directives("".join(out))
    # Forward each allow to the first non-blank (after stripping) line
    # below its comment, so the allow can sit on the line above.
    stripped_lines = stripped.split("\n")
    for line_no, rule in pending:
        for below in range(line_no + 1, len(stripped_lines) + 1):
            if stripped_lines[below - 1].strip():
                allows.setdefault(below, set()).add(rule)
                break
    return stripped, allows


def _blank_directives(stripped: str) -> str:
    """Blank preprocessor directives (with backslash continuations) so the
    tokenizer only sees C++ proper."""
    lines = stripped.split("\n")
    i = 0
    while i < len(lines):
        if lines[i].lstrip().startswith("#"):
            while True:
                cont = lines[i].rstrip().endswith("\\")
                lines[i] = " " * len(lines[i])
                if not cont or i + 1 >= len(lines):
                    break
                i += 1
        i += 1
    return "\n".join(lines)


@dataclass(frozen=True)
class Tok:
    """One token: kind is 'id', 'num', or 'punct'."""
    kind: str
    text: str
    line: int


_TOKEN_RE = re.compile(
    r"[A-Za-z_][A-Za-z0-9_]*"        # identifier / keyword
    r"|\d[\dA-Za-z_.'+-]*"           # numeric literal (pp-number, loose)
    r"|::|->\*?|\+\+|--|<<=|>>=|<=>|<<|>>|<=|>=|==|!=|&&|\|\||[+\-*/%&|^]=|=|"
    r"\.\.\.|[{}()\[\];:,.<>?~!&|^*+\-/%#]"
)

KEYWORDS = frozenset("""
    alignas alignof asm auto bool break case catch char char8_t char16_t
    char32_t class concept const consteval constexpr constinit const_cast
    continue co_await co_return co_yield decltype default delete do double
    dynamic_cast else enum explicit export extern false final float for
    friend goto if inline int long mutable namespace new noexcept nullptr
    operator override private protected public register reinterpret_cast
    requires return short signed sizeof static static_assert static_cast
    struct switch template this thread_local throw true try typedef typeid
    typename union unsigned using virtual void volatile wchar_t while
""".split())

# Tokens that can legally precede a lambda-introducer '[' in an expression.
LAMBDA_PRECEDERS = frozenset({
    "(", ",", "=", "{", ";", ":", "return", "co_await", "co_return",
    "co_yield", "&&", "||", "!", "?", "<", ">",
})


def tokenize(stripped: str) -> list[Tok]:
    toks: list[Tok] = []
    line = 1
    pos = 0
    for m in _TOKEN_RE.finditer(stripped):
        line += stripped.count("\n", pos, m.start())
        pos = m.start()
        text = m.group(0)
        if text[0].isalpha() or text[0] == "_":
            toks.append(Tok("id", text, line))
        elif text[0].isdigit():
            toks.append(Tok("num", text, line))
        else:
            toks.append(Tok("punct", text, line))
    return toks


def match_forward(toks: list[Tok], i: int, opener: str, closer: str) -> int:
    """Index just past the token matching `opener` at toks[i]."""
    depth = 0
    n = len(toks)
    while i < n:
        t = toks[i].text
        if t == opener:
            depth += 1
        elif t == closer:
            depth -= 1
            if depth == 0:
                return i + 1
        i += 1
    return n


def skip_template_args(toks: list[Tok], i: int) -> int:
    """Given toks[i] == '<', return index past the matching '>'. Handles
    '>>' never being produced (tokenizer splits '>>' as one token only for
    shifts; we re-split here by counting)."""
    depth = 0
    n = len(toks)
    while i < n:
        t = toks[i].text
        if t == "<":
            depth += 1
        elif t == ">":
            depth -= 1
            if depth == 0:
                return i + 1
        elif t == ">>":
            depth -= 2
            if depth <= 0:
                return i + 1
        elif t in (";", "{", "}"):
            # Not template args after all (a comparison spilling to EOL).
            return i
        i += 1
    return n
