"""The frontend-neutral IR both frontends produce and all rules consume.

The IR is deliberately modest: enough structure for the four rule
families, nothing more. A frontend that cannot prove a fact leaves the
field at its "unknown" default — rules only fire on positive evidence, so
an imprecise frontend under-reports rather than inventing findings."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class CallSite:
    name: str                    # unqualified callee name ('reserve')
    line: int
    qualifier: str = ""          # 'Pipe' for Pipe::reserve, '' if unknown
    receiver: str = ""           # receiver expression chain ('f.claims')


@dataclass
class AllocSite:
    kind: str                    # new | make_unique | make_shared | malloc
    #                            | std_function | growth:<method>
    line: int
    detail: str = ""


@dataclass
class LoopSite:
    line: int
    iterable: str                # source text of the iterated expression
    iterable_type: str = ""      # resolved type spelling ('' = unknown)
    unordered: bool = False
    writes_nonlocal: list[str] = field(default_factory=list)
    sink_calls: list[str] = field(default_factory=list)
    has_break: bool = False
    has_return: bool = False
    wrote_locals: set[str] = field(default_factory=set)


@dataclass
class LambdaSite:
    line: int
    captures: str                # raw capture list text ('&', 'this, &x')
    by_ref: bool = False         # any by-reference capture
    is_coroutine: bool = False   # co_await/co_return/co_yield in OWN body
    # How the lambda leaves the introducer expression:
    #   awaited_in_place | immediate_invoke | run_arg | named:<ident> |
    #   arg:<callee> | returned | assigned:<target> | unknown
    usage: str = "unknown"


@dataclass
class StaticVar:
    name: str
    qname: str                   # namespace-qualified where known
    file: str
    line: int
    kind: str                    # namespace | local_static | thread_local
    #                            | static_member
    type_str: str = ""
    is_const: bool = False       # const or constexpr (immutable after init)
    owner_function: str = ""     # qname of enclosing function for locals


@dataclass
class ContainerDecl:
    name: str
    file: str
    line: int
    type_str: str
    template: str                # 'map', 'set', 'unordered_map', ...
    key_type: str
    ptr_key: bool = False
    owner: str = ""              # enclosing class/function qname


@dataclass
class Function:
    qname: str                   # 'mns::model::NetFabric::flow_step'
    name: str                    # 'flow_step'
    cls: str = ""                # enclosing class qname ('' = free)
    file: str = ""
    line: int = 0
    is_coroutine: bool = False
    annotations: set[str] = field(default_factory=set)   # {'MNS_HOT'}
    calls: list[CallSite] = field(default_factory=list)
    allocs: list[AllocSite] = field(default_factory=list)
    loops: list[LoopSite] = field(default_factory=list)
    lambdas: list[LambdaSite] = field(default_factory=list)
    static_locals: list[StaticVar] = field(default_factory=list)
    idents: set[str] = field(default_factory=set)        # every identifier
    returned_idents: set[str] = field(default_factory=set)


@dataclass
class ClassInfo:
    qname: str
    bases: list[str] = field(default_factory=list)       # base class names
    member_types: dict[str, str] = field(default_factory=dict)


@dataclass
class SourceModel:
    """Everything the frontends extracted from one run."""
    frontend: str = "fallback"
    functions: list[Function] = field(default_factory=list)
    classes: dict[str, ClassInfo] = field(default_factory=dict)
    statics: list[StaticVar] = field(default_factory=list)
    containers: list[ContainerDecl] = field(default_factory=list)
    # file -> line -> suppressed rule names
    allows: dict[str, dict[int, set[str]]] = field(default_factory=dict)
    files: list[str] = field(default_factory=list)

    def allowed(self, rule: str, file: str, line: int) -> bool:
        return rule in self.allows.get(file, {}).get(line, set())


@dataclass
class Finding:
    rule: str
    file: str
    line: int
    message: str
    severity: str = "error"      # error | info (info never affects exit)
    chain: str = ""              # hot-alloc call chain, for the report
