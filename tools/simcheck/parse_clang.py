"""Clang frontend: libclang (python clang.cindex) → simcheck IR.

Used when the bindings import AND a libclang shared object loads; the CLI
falls back to the token frontend otherwise. Parsing each TU with its real
compile flags gives exact types for container keys and loop ranges —
the fixtures run against both frontends so their verdicts stay aligned."""

from __future__ import annotations

from pathlib import Path

from .lex import strip_and_harvest
from .model import (AllocSite, CallSite, ClassInfo, ContainerDecl, Function,
                    LambdaSite, LoopSite, SourceModel, StaticVar)

try:  # pragma: no cover - exercised only where bindings exist
    from clang import cindex as _cx
except ImportError:  # pragma: no cover
    _cx = None

_GROWTH = {"push_back", "emplace_back", "push_front", "emplace_front",
           "emplace", "try_emplace", "insert", "insert_or_assign",
           "resize", "reserve", "append", "assign"}
_ALLOC_FNS = {"make_unique": "make_unique", "make_shared": "make_shared",
              "malloc": "malloc", "calloc": "malloc", "realloc": "malloc"}


def available() -> bool:
    """True if clang.cindex imports and libclang actually loads."""
    if _cx is None:
        return False
    try:
        _cx.Index.create()
        return True
    except Exception:
        return False


def _spelling(t) -> str:
    return t.get_canonical().spelling


def _is_unordered(type_spelling: str) -> bool:
    return "unordered_map" in type_spelling or \
        "unordered_set" in type_spelling or \
        "unordered_multi" in type_spelling


def _container_template(type_spelling: str) -> str:
    for t in ("unordered_multimap", "unordered_multiset", "unordered_map",
              "unordered_set", "multimap", "multiset", "map", "set"):
        if "std::" + t + "<" in type_spelling.replace(" ", ""):
            return t
    return ""


def _key_of(type_spelling: str):
    lt = type_spelling.find("<")
    if lt == -1:
        return ""
    depth, out = 0, []
    for ch in type_spelling[lt:]:
        if ch == "<":
            depth += 1
            if depth == 1:
                continue
        elif ch == ">":
            depth -= 1
            if depth == 0:
                break
        elif ch == "," and depth == 1:
            break
        out.append(ch)
    return "".join(out).strip()


class ClangLoader:
    def __init__(self, root: Path):
        self.root = root.resolve()
        self.sm = SourceModel(frontend="clang")
        self.index = _cx.Index.create()
        self._seen_files: set[str] = set()
        self._seen_fn_keys: set[tuple] = set()

    def _rel(self, f) -> str:
        try:
            return Path(str(f)).resolve().relative_to(self.root).as_posix()
        except ValueError:
            return ""

    def _in_project(self, cursor) -> bool:
        loc = cursor.location
        return bool(loc.file) and bool(self._rel(loc.file.name))

    def load_tu(self, source: Path, args: list[str]) -> None:
        keep = [a for a in args[1:] if a not in ("-c", "-o")
                and not a.endswith(".o") and Path(a) != source]
        tu = self.index.parse(str(source), args=keep,
                              options=_cx.TranslationUnit.PARSE_INCOMPLETE)
        self._walk(tu.cursor, ns=[])
        for f in {c.location.file.name for c in tu.cursor.walk_preorder()
                  if c.location.file}:
            rel = self._rel(f)
            if rel and rel not in self._seen_files:
                self._seen_files.add(rel)
                self.sm.files.append(rel)
                text = Path(f).read_text(encoding="utf-8", errors="replace")
                _, allows = strip_and_harvest(text)
                self.sm.allows[rel] = allows

    # -- declaration walk ----------------------------------------------------

    def _walk(self, cursor, ns: list[str]) -> None:
        K = _cx.CursorKind
        for c in cursor.get_children():
            if not self._in_project(c) and c.kind != K.NAMESPACE:
                continue
            if c.kind == K.NAMESPACE:
                self._walk(c, ns + [c.spelling] if c.spelling else ns)
            elif c.kind in (K.CLASS_DECL, K.STRUCT_DECL, K.CLASS_TEMPLATE):
                if c.is_definition():
                    self._visit_class(c, ns)
            elif c.kind in (K.FUNCTION_DECL, K.CXX_METHOD, K.CONSTRUCTOR,
                            K.DESTRUCTOR, K.FUNCTION_TEMPLATE):
                if c.is_definition():
                    self._visit_function(c, ns, cls="")
            elif c.kind == K.VAR_DECL:
                self._visit_var(c, ns, cls=None)
            elif c.kind == K.LINKAGE_SPEC:
                self._walk(c, ns)

    def _visit_class(self, cursor, ns: list[str]) -> None:
        K = _cx.CursorKind
        qname = "::".join([n for n in ns if n] + [cursor.spelling])
        info = self.sm.classes.setdefault(qname, ClassInfo(qname=qname))
        for c in cursor.get_children():
            if c.kind == K.CXX_BASE_SPECIFIER:
                base = c.type.spelling.split("<")[0].split("::")[-1]
                if base and base not in info.bases:
                    info.bases.append(base)
            elif c.kind == K.FIELD_DECL:
                ty = _spelling(c.type)
                info.member_types[c.spelling] = ty
                self._maybe_container(c.spelling, c, ty, owner=qname)
            elif c.kind == K.VAR_DECL:      # static data member
                self._visit_var(c, ns + [cursor.spelling], cls=qname)
            elif c.kind in (K.CXX_METHOD, K.CONSTRUCTOR, K.DESTRUCTOR,
                            K.FUNCTION_TEMPLATE):
                if c.is_definition():
                    self._visit_function(c, ns, cls=qname)
            elif c.kind in (K.CLASS_DECL, K.STRUCT_DECL):
                if c.is_definition():
                    self._visit_class(c, ns + [cursor.spelling])

    def _visit_var(self, cursor, ns: list[str], cls: str | None) -> None:
        ty = cursor.type
        spell = _spelling(ty)
        rel = self._rel(cursor.location.file.name)
        if not rel:
            return
        qname = "::".join([n for n in ns if n] + [cursor.spelling])
        self._maybe_container(cursor.spelling, cursor, spell,
                              owner=cls or "::".join(ns))
        is_const = ty.is_const_qualified()
        tls = cursor.storage_class == _cx.StorageClass.NONE and \
            "thread_local" in _first_tokens(cursor)
        kind = "thread_local" if tls else (
            "static_member" if cls else "namespace")
        if cls and is_const:
            return
        self.sm.statics.append(StaticVar(
            name=cursor.spelling, qname=qname, file=rel,
            line=cursor.location.line, kind=kind, type_str=spell,
            is_const=is_const))

    def _maybe_container(self, name: str, cursor, type_spelling: str,
                         owner: str) -> None:
        tmpl = _container_template(type_spelling)
        if not tmpl:
            return
        rel = self._rel(cursor.location.file.name)
        if not rel:
            return
        key = _key_of(type_spelling)
        self.sm.containers.append(ContainerDecl(
            name=name, file=rel, line=cursor.location.line,
            type_str=type_spelling, template=tmpl, key_type=key,
            ptr_key=key.strip().endswith("*"), owner=owner))

    # -- function bodies -----------------------------------------------------

    def _visit_function(self, cursor, ns: list[str], cls: str) -> None:
        rel = self._rel(cursor.location.file.name)
        if not rel:
            return
        sem = cursor.semantic_parent
        if not cls and sem and sem.kind in (_cx.CursorKind.CLASS_DECL,
                                            _cx.CursorKind.STRUCT_DECL):
            cls = _qname_of(sem)
        qname = (cls + "::" + cursor.spelling) if cls else \
            "::".join([n for n in ns if n] + [cursor.spelling])
        key = (qname, rel, cursor.location.line)
        if key in self._seen_fn_keys:
            return
        self._seen_fn_keys.add(key)
        fn = Function(qname=qname, name=cursor.spelling, cls=cls, file=rel,
                      line=cursor.location.line)
        for tok in cursor.get_tokens():
            if tok.spelling in ("MNS_HOT", "mns_hot"):
                fn.annotations.add("MNS_HOT")
                break
        locals_: set[str] = {a.spelling for a in cursor.get_arguments()}
        self._walk_body(cursor, fn, locals_, in_lambda=None)
        self.sm.functions.append(fn)

    def _walk_body(self, cursor, fn: Function, locals_: set[str],
                   in_lambda: LambdaSite | None) -> None:
        K = _cx.CursorKind
        for c in cursor.get_children():
            kind = c.kind
            line = c.location.line
            if kind == K.VAR_DECL:
                locals_.add(c.spelling)
                spell = _spelling(c.type)
                self._maybe_container(c.spelling, c, spell, owner=fn.qname)
                toks = _first_tokens(c)
                if "static" in toks or "thread_local" in toks:
                    sv = StaticVar(
                        name=c.spelling, qname=fn.qname + "::" + c.spelling,
                        file=fn.file, line=line,
                        kind="thread_local" if "thread_local" in toks
                        else "local_static", type_str=spell,
                        is_const=c.type.is_const_qualified(),
                        owner_function=fn.qname)
                    fn.static_locals.append(sv)
                    self.sm.statics.append(sv)
                self._walk_body(c, fn, locals_, in_lambda)
            elif kind == K.CXX_NEW_EXPR:
                fn.allocs.append(AllocSite(kind="new", line=line,
                                           detail="new expression"))
                self._walk_body(c, fn, locals_, in_lambda)
            elif kind == K.LAMBDA_EXPR:
                lam = self._visit_lambda(c, fn, locals_)
                fn.lambdas.append(lam)
            elif kind == K.CALL_EXPR:
                self._visit_call(c, fn, line)
                self._walk_body(c, fn, locals_, in_lambda)
            elif kind == K.CXX_FOR_RANGE_STMT:
                self._visit_range_for(c, fn, locals_, in_lambda)
            elif kind in (K.COROUTINE_BODY_STMT,):
                if in_lambda is None:
                    fn.is_coroutine = True
                else:
                    in_lambda.is_coroutine = True
                self._walk_body(c, fn, locals_, in_lambda)
            elif kind == K.RETURN_STMT:
                for d in c.walk_preorder():
                    if d.kind == K.DECL_REF_EXPR:
                        fn.returned_idents.add(d.spelling)
                self._walk_body(c, fn, locals_, in_lambda)
            else:
                if kind == K.DECL_REF_EXPR:
                    fn.idents.add(c.spelling)
                if c.spelling in ("co_await", "co_return", "co_yield") or \
                        kind in (getattr(K, "COAWAIT_EXPR", kind),):
                    pass
                self._walk_body(c, fn, locals_, in_lambda)
        # Token-level coroutine sniff: cindex coverage of coroutine nodes
        # varies by libclang version, so double-check with tokens once at
        # the top call (cursor is the function decl itself there).
        if cursor.kind in (K.FUNCTION_DECL, K.CXX_METHOD,
                           K.FUNCTION_TEMPLATE) and not fn.is_coroutine:
            for tok in cursor.get_tokens():
                if tok.spelling in ("co_await", "co_return", "co_yield"):
                    fn.is_coroutine = True
                    break

    def _visit_lambda(self, cursor, fn: Function,
                      locals_: set[str]) -> LambdaSite:
        toks = list(cursor.get_tokens())
        cap = ""
        if toks and toks[0].spelling == "[":
            depth, parts = 0, []
            for t in toks:
                if t.spelling == "[":
                    depth += 1
                    if depth == 1:
                        continue
                elif t.spelling == "]":
                    depth -= 1
                    if depth == 0:
                        break
                parts.append(t.spelling)
            cap = " ".join(parts)
        lam = LambdaSite(line=cursor.location.line, captures=cap,
                         by_ref="&" in cap)
        for t in toks:
            if t.spelling in ("co_await", "co_return", "co_yield"):
                lam.is_coroutine = True
                break
        self._walk_body(cursor, fn, set(locals_), in_lambda=lam)
        lam.usage = _lambda_usage_clang(cursor)
        return lam

    def _visit_call(self, cursor, fn: Function, line: int) -> None:
        name = cursor.spelling
        if not name:
            ref = cursor.referenced
            name = ref.spelling if ref else ""
        if not name:
            return
        recv = ""
        kids = list(cursor.get_children())
        if kids and kids[0].kind == _cx.CursorKind.MEMBER_REF_EXPR:
            recv = _member_chain(kids[0])
        qualifier = ""
        ref = cursor.referenced
        if ref is not None and ref.semantic_parent is not None:
            qualifier = ref.semantic_parent.spelling or ""
        if name in _ALLOC_FNS:
            fn.allocs.append(AllocSite(kind=_ALLOC_FNS[name], line=line,
                                       detail=name))
            return
        if name == "function" and qualifier == "std":
            fn.allocs.append(AllocSite(kind="std_function", line=line,
                                       detail="std::function"))
            return
        if name in _GROWTH and recv:
            fn.allocs.append(AllocSite(kind="growth:" + name, line=line,
                                       detail=recv + "." + name + "(...)"))
        fn.calls.append(CallSite(name=name, line=line, qualifier=qualifier,
                                 receiver=recv))
        if ref is not None and ref.kind == _cx.CursorKind.CONSTRUCTOR and \
                ref.semantic_parent is not None and \
                ref.semantic_parent.spelling == "function":
            fn.allocs.append(AllocSite(kind="std_function", line=line,
                                       detail="std::function construction"))

    def _visit_range_for(self, cursor, fn: Function, locals_: set[str],
                         in_lambda: LambdaSite | None) -> None:
        K = _cx.CursorKind
        kids = list(cursor.get_children())
        range_init = None
        body = None
        loop_var = ""
        for c in kids:
            if c.kind == K.VAR_DECL and c.spelling.startswith("__range"):
                range_init = c
            elif c.kind == K.VAR_DECL:
                loop_var = c.spelling
                locals_.add(c.spelling)
            elif c.kind == K.COMPOUND_STMT or body is None:
                body = c
        # Fallback: the range expression is the child before the body.
        iterable, ty = "", ""
        src = range_init
        if src is None:
            exprs = [c for c in kids if c.kind not in (K.VAR_DECL,
                                                       K.DECL_STMT)]
            src = exprs[0] if exprs else None
            body = exprs[-1] if exprs else body
        if src is not None:
            ty = _spelling(src.type)
            iterable = " ".join(t.spelling for t in src.get_tokens())[:80]
        loop = LoopSite(line=cursor.location.line, iterable=iterable,
                        iterable_type=ty, unordered=_is_unordered(ty))
        if body is not None:
            self._scan_loop_body(body, loop, locals_ | {loop_var}, fn)
        fn.loops.append(loop)
        if body is not None:
            self._walk_body(body, fn, locals_, in_lambda)

    def _scan_loop_body(self, body, loop: LoopSite, locals_: set[str],
                        fn: Function) -> None:
        K = _cx.CursorKind
        for c in body.walk_preorder():
            if c.kind == K.BREAK_STMT:
                loop.has_break = True
            elif c.kind == K.RETURN_STMT:
                loop.has_return = True
            elif c.kind in (K.BINARY_OPERATOR,
                            K.COMPOUND_ASSIGNMENT_OPERATOR):
                toks = [t.spelling for t in c.get_tokens()]
                if any(op in toks for op in
                       ("=", "+=", "-=", "*=", "|=", "&=", "^=")):
                    kids = list(c.get_children())
                    if kids:
                        base = _base_ident(kids[0])
                        if base:
                            if base in locals_:
                                loop.wrote_locals.add(base)
                            else:
                                loop.writes_nonlocal.append(base)
            elif c.kind == K.CALL_EXPR and c.spelling in _GROWTH | {
                    "erase", "fire", "fail", "schedule", "record", "add",
                    "push", "post", "send", "count"}:
                kids = list(c.get_children())
                if kids and kids[0].kind == K.MEMBER_REF_EXPR:
                    chain = _member_chain(kids[0])
                    base = chain.split(".")[0] if chain else ""
                    if base and base not in locals_:
                        loop.sink_calls.append(chain + "." + c.spelling)


def _first_tokens(cursor, limit: int = 6) -> list[str]:
    out = []
    for i, t in enumerate(cursor.get_tokens()):
        if i >= limit:
            break
        out.append(t.spelling)
    return out


def _qname_of(cursor) -> str:
    parts = []
    c = cursor
    while c is not None and c.kind != _cx.CursorKind.TRANSLATION_UNIT:
        if c.spelling:
            parts.append(c.spelling)
        c = c.semantic_parent
    return "::".join(reversed(parts))


def _member_chain(cursor) -> str:
    K = _cx.CursorKind
    parts = [cursor.spelling] if cursor.spelling else []
    kids = list(cursor.get_children())
    while kids:
        c = kids[0]
        if c.kind == K.MEMBER_REF_EXPR and c.spelling:
            parts.append(c.spelling)
            kids = list(c.get_children())
        elif c.kind == K.DECL_REF_EXPR and c.spelling:
            parts.append(c.spelling)
            break
        else:
            break
    return ".".join(reversed(parts))


def _base_ident(cursor) -> str:
    K = _cx.CursorKind
    c = cursor
    while True:
        if c.kind == K.DECL_REF_EXPR:
            return c.spelling
        kids = list(c.get_children())
        if not kids:
            return c.spelling if c.kind == K.MEMBER_REF_EXPR else ""
        c = kids[0]


def _lambda_usage_clang(cursor) -> str:
    p = cursor.semantic_parent
    lex = cursor.lexical_parent
    K = _cx.CursorKind
    parent = lex or p
    if parent is None:
        return "unknown"
    if parent.kind == K.CALL_EXPR:
        callee = parent.spelling or ""
        if callee == "run":
            return "run_arg"
        return "arg:" + callee if callee else "arg:?"
    if parent.kind == K.VAR_DECL:
        return "named:" + parent.spelling
    if parent.kind == K.RETURN_STMT:
        return "returned"
    return "unknown"


def parse_with_clang(compdb_entries: list[dict], root: Path) -> SourceModel:
    from .compdb import entry_args, tu_sources
    loader = ClangLoader(root)
    for entry in compdb_entries:
        f = Path(entry.get("file", ""))
        if not f.is_absolute():
            f = Path(entry.get("directory", ".")) / f
        f = f.resolve()
        if f not in set(tu_sources(compdb_entries, root)):
            continue
        loader.load_tu(f, entry_args(entry))
    return loader.sm
