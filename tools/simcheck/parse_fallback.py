"""Fallback frontend: a token/scope analyzer for the simcheck IR.

No dependency beyond the Python stdlib, so the checker runs on hosts
without libclang bindings. It is a *recognizer*, not a compiler: it tracks
namespaces, classes (with bases and member types), function definitions
(with qualified names), lambdas (captures, coroutine-ness, escape route),
range-for loops (iterable typing through members/locals/params), statics
at every scope, allocation sites, and name-level call sites. Anything it
cannot prove it leaves unknown — rules fire on positive evidence only."""

from __future__ import annotations

from pathlib import Path

from .lex import (KEYWORDS, LAMBDA_PRECEDERS, Tok, match_forward,
                  skip_template_args, strip_and_harvest, tokenize)
from .model import (AllocSite, CallSite, ClassInfo, ContainerDecl, Function,
                    LambdaSite, LoopSite, SourceModel, StaticVar)

CONTAINER_TEMPLATES = {
    "map", "set", "multimap", "multiset",
    "unordered_map", "unordered_set", "unordered_multimap",
    "unordered_multiset",
}
UNORDERED_TEMPLATES = {t for t in CONTAINER_TEMPLATES if "unordered" in t}
GROWTH_METHODS = {
    "push_back", "emplace_back", "push_front", "emplace_front", "emplace",
    "try_emplace", "insert", "insert_or_assign", "resize", "reserve",
    "append", "assign",
}
# Methods whose name alone implies a std container — flagged even when the
# receiver cannot be typed. The rest ('reserve', 'insert', ...) are generic
# verbs this codebase also uses for non-allocating things (Pipe::reserve is
# a bandwidth reservation returning a Time) and need a typed receiver.
STRONG_GROWTH = {
    "push_back", "emplace_back", "push_front", "emplace_front",
    "try_emplace", "insert_or_assign",
}
CONTAINER_TYPE_HINTS = ("vector", "deque", "map", "set", "string", "list",
                        "basic_string")
ALLOC_CALLS = {
    "make_unique": "make_unique", "make_shared": "make_shared",
    "malloc": "malloc", "calloc": "malloc", "realloc": "malloc",
}
# Mutating verbs that make an unordered loop body order-visible even when
# the target is reached through a call rather than an assignment.
MUTATING_SINKS = GROWTH_METHODS | {
    "erase", "fire", "fail", "require", "require_eq", "schedule", "add",
    "add_check", "send", "post", "record", "count", "push", "pop",
}
SPECIFIERS = {
    "static", "inline", "constexpr", "consteval", "constinit", "const",
    "thread_local", "mutable", "extern", "virtual", "explicit", "friend",
    "typename", "register", "volatile",
}


def _type_of(tokens: list[Tok]) -> str:
    return " ".join(t.text for t in tokens)


def _container_template(type_str: str) -> str:
    """'std::unordered_map< K , V >' -> 'unordered_map' ('' if none)."""
    toks = type_str.replace("<", " < ").split()
    for i, t in enumerate(toks):
        if t in CONTAINER_TEMPLATES and i + 1 < len(toks) and \
                toks[i + 1] == "<":
            return t
    return ""


def _key_of(type_str: str) -> str:
    """First top-level template argument of the container in type_str."""
    lt = type_str.find("<")
    if lt == -1:
        return ""
    depth = 0
    out = []
    for ch in type_str[lt:]:
        if ch == "<":
            depth += 1
            if depth == 1:
                continue
        elif ch == ">":
            depth -= 1
            if depth == 0:
                break
        elif ch == "," and depth == 1:
            break
        out.append(ch)
    return "".join(out).strip()


def _is_ptr_key(key: str) -> bool:
    """Pointer-typed key at top level (Foo*, const Foo *, Foo<T>*)."""
    k = key.strip()
    return k.endswith("*")


class FileParser:
    def __init__(self, path: Path, rel: str, sm: SourceModel):
        self.rel = rel
        self.sm = sm
        text = path.read_text(encoding="utf-8", errors="replace")
        stripped, allows = strip_and_harvest(text)
        sm.allows[rel] = allows
        self.toks = tokenize(stripped)
        self.n = len(self.toks)
        # function bodies deferred to a second pass (see _parse_function)
        self.pending: list[tuple[Function, int, int, dict[str, str]]] = []

    # -- declaration scope ---------------------------------------------------

    def parse(self) -> None:
        self.parse_decls(0, self.n, ns=[], cls=None)

    def parse_decls(self, i: int, end: int,
                    ns: list[str], cls: ClassInfo | None) -> None:
        while i < end:
            t = self.toks[i]
            txt = t.text
            if txt == "namespace":
                i = self._parse_namespace(i, end, ns, cls)
            elif txt in ("class", "struct", "union"):
                i = self._parse_class(i, end, ns, cls)
            elif txt == "enum":
                i = self._skip_enum(i, end)
            elif txt == "template":
                i = self._skip_template_header(i + 1, end)
            elif txt in ("using", "typedef", "static_assert", "friend"):
                i = self._skip_past(i, end, ";")
            elif txt in ("public", "private", "protected") and \
                    i + 1 < end and self.toks[i + 1].text == ":":
                i += 2
            elif txt == "extern" and i + 1 < end and \
                    self.toks[i + 1].text == "{":
                inner_end = match_forward(self.toks, i + 1, "{", "}")
                self.parse_decls(i + 2, inner_end - 1, ns, cls)
                i = inner_end
            elif txt == ";" or txt == "}":
                i += 1
            else:
                i = self._parse_declaration(i, end, ns, cls)

    def _parse_namespace(self, i: int, end: int, ns: list[str],
                         cls: ClassInfo | None) -> int:
        j = i + 1
        parts: list[str] = []
        while j < end and self.toks[j].text not in ("{", ";", "="):
            if self.toks[j].kind == "id":
                parts.append(self.toks[j].text)
            j += 1
        if j >= end or self.toks[j].text != "{":
            return self._skip_past(i, end, ";")  # namespace alias
        inner_end = match_forward(self.toks, j, "{", "}")
        self.parse_decls(j + 1, inner_end - 1, ns + parts, cls)
        return inner_end

    def _parse_class(self, i: int, end: int, ns: list[str],
                     cls: ClassInfo | None) -> int:
        j = i + 1
        name = ""
        while j < end and self.toks[j].text not in ("{", ";", ":", "("):
            if self.toks[j].kind == "id" and \
                    self.toks[j].text not in ("final", "alignas"):
                name = self.toks[j].text
            elif self.toks[j].text == "<":
                j = skip_template_args(self.toks, j) - 1
            j += 1
        if j >= end:
            return end
        if self.toks[j].text == ";":
            return j + 1  # forward declaration
        if self.toks[j].text == "(":
            # `struct X { .. } x(...)` oddity or macro call; bail to ';'.
            return self._skip_past(i, end, ";")
        bases: list[str] = []
        if self.toks[j].text == ":":
            j += 1
            while j < end and self.toks[j].text != "{":
                if self.toks[j].kind == "id" and self.toks[j].text not in (
                        "public", "private", "protected", "virtual"):
                    bases.append(self.toks[j].text)
                elif self.toks[j].text == "<":
                    j = skip_template_args(self.toks, j) - 1
                j += 1
        if j >= end or self.toks[j].text != "{":
            return j
        qname = "::".join([p for p in ns if p] + ([name] if name else []))
        info = self.sm.classes.setdefault(qname or name,
                                          ClassInfo(qname=qname or name))
        for b in bases:
            if b not in info.bases:
                info.bases.append(b)
        inner_end = match_forward(self.toks, j, "{", "}")
        self.parse_decls(j + 1, inner_end - 1,
                         ns + ([name] if name else []), info)
        # Trailing `} name;` instance declarations are skipped by caller.
        return inner_end

    def _skip_enum(self, i: int, end: int) -> int:
        j = i
        while j < end and self.toks[j].text not in ("{", ";"):
            j += 1
        if j < end and self.toks[j].text == "{":
            j = match_forward(self.toks, j, "{", "}")
        return self._skip_past(j, end, ";") if j < end else end

    def _skip_template_header(self, i: int, end: int) -> int:
        if i < end and self.toks[i].text == "<":
            return skip_template_args(self.toks, i)
        return i

    def _skip_past(self, i: int, end: int, stop: str) -> int:
        depth = 0
        while i < end:
            t = self.toks[i].text
            if t in ("{", "(", "["):
                depth += 1
            elif t in ("}", ")", "]"):
                depth -= 1
            elif t == stop and depth <= 0:
                return i + 1
            i += 1
        return end

    # -- one declaration at namespace/class scope ----------------------------

    def _parse_declaration(self, i: int, end: int, ns: list[str],
                           cls: ClassInfo | None) -> int:
        """Either a function definition (analyzed), a function prototype
        (skipped), or a variable/field declaration (recorded)."""
        start = i
        specs: set[str] = set()
        annotations: set[str] = set()
        prefix: list[Tok] = []         # type tokens (keeps '<...>' inline)
        name = ""
        name_line = self.toks[i].line
        qual: list[str] = []           # A::B qualifier chain before name
        j = i
        while j < end:
            t = self.toks[j]
            txt = t.text
            if txt in SPECIFIERS:
                specs.add(txt)
                j += 1
            elif txt == "MNS_HOT" or txt.startswith("MNS_HOT_"):
                annotations.add("MNS_HOT")
                j += 1
            elif txt == "operator":
                # operator functions: name is 'operator X'
                k = j + 1
                op = []
                while k < end and self.toks[k].text != "(":
                    op.append(self.toks[k].text)
                    k += 1
                # operator() has its '(' as part of the name
                if not op and k + 1 < end and self.toks[k].text == "(" \
                        and self.toks[k + 1].text == ")":
                    op = ["(", ")"]
                    k += 2
                name = "operator" + "".join(op)
                name_line = t.line
                j = k
                break
            elif txt == "<":
                # '<' after a pending name means the name was a template
                # type (std::vector<...>), not the declarator — flush it
                # (and its qualifier chain) into the type prefix.
                if name:
                    for q in qual:
                        prefix.append(Tok("id", q, name_line))
                    qual = []
                    prefix.append(Tok("id", name, name_line))
                    name = ""
                close = skip_template_args(self.toks, j)
                prefix.extend(self.toks[j:close])
                j = close
            elif txt == "(":
                break
            elif txt in (";", "{", "=", "}"):
                break
            elif txt == "::":
                if name:
                    qual.append(name)
                    name = ""
                j += 1
            elif t.kind == "id" and txt not in KEYWORDS:
                if name:
                    # previous identifier (and any A::B chain) was the
                    # type; this one starts a fresh declarator candidate
                    for q in qual:
                        prefix.append(Tok("id", q, name_line))
                    qual = []
                    prefix.append(Tok("id", name, name_line))
                name = txt
                name_line = t.line
                j += 1
            else:
                prefix.append(t)
                j += 1

        if j >= end:
            return end
        stop = self.toks[j].text
        if stop == "(" and name:
            return self._parse_function(start, j, end, ns, cls, specs,
                                        annotations, prefix, qual, name,
                                        name_line)
        # Variable / field declaration (possibly `Foo x{...};`).
        type_str = _type_of(prefix)
        if stop == "{":
            close = match_forward(self.toks, j, "{", "}")
            j = self._skip_past(close, end, ";") - 1
        elif stop == "=":
            j = self._skip_past(j, end, ";") - 1
        if name and "using" not in specs:
            self._record_variable(name, name_line, type_str, specs, ns, cls)
        return max(j + 1, start + 1)

    def _record_variable(self, name: str, line: int, type_str: str,
                         specs: set[str], ns: list[str],
                         cls: ClassInfo | None) -> None:
        qname = "::".join([p for p in ns if p] + [name])
        tmpl = _container_template(type_str)
        owner = cls.qname if cls else "::".join(p for p in ns if p)
        if tmpl:
            key = _key_of(type_str)
            self.sm.containers.append(ContainerDecl(
                name=name, file=self.rel, line=line, type_str=type_str,
                template=tmpl, key_type=key, ptr_key=_is_ptr_key(key),
                owner=owner))
        if cls is not None:
            cls.member_types[name] = type_str
            if "static" in specs and "const" not in specs and \
                    "constexpr" not in specs:
                self.sm.statics.append(StaticVar(
                    name=name, qname=cls.qname + "::" + name, file=self.rel,
                    line=line, kind="static_member", type_str=type_str,
                    is_const=False))
            return
        if "extern" in specs:
            return
        is_const = "const" in specs or "constexpr" in specs or \
            "consteval" in specs
        kind = "thread_local" if "thread_local" in specs else "namespace"
        self.sm.statics.append(StaticVar(
            name=name, qname=qname, file=self.rel, line=line, kind=kind,
            type_str=type_str, is_const=is_const))

    # -- functions -----------------------------------------------------------

    def _parse_function(self, start: int, lparen: int, end: int,
                        ns: list[str], cls: ClassInfo | None,
                        specs: set[str], annotations: set[str],
                        prefix: list[Tok], qual: list[str], name: str,
                        name_line: int) -> int:
        params_end = match_forward(self.toks, lparen, "(", ")")
        j = params_end
        # Scan the post-parameter region for the body '{', a ';' (prototype)
        # or '= default/delete/0;'.
        while j < end:
            txt = self.toks[j].text
            if txt in ("noexcept", "requires") and j + 1 < end and \
                    self.toks[j + 1].text == "(":
                j = match_forward(self.toks, j + 1, "(", ")")
            elif txt == "->":
                j += 1
            elif txt == "<":
                j = skip_template_args(self.toks, j)
            elif txt == ":":
                j = self._skip_ctor_inits(j + 1, end)
            elif txt == "{":
                break
            elif txt in (";", "="):
                if txt == "=":
                    return self._skip_past(j, end, ";")
                # Prototype: if it declared a returned variable like
                # `int x(5);` we cannot tell — treat as prototype either way.
                return j + 1
            else:
                j += 1
        if j >= end:
            return end
        body_end = match_forward(self.toks, j, "{", "}")

        cls_qname = cls.qname if cls else ""
        if qual and not cls_qname:
            # Out-of-line member definition Cls::fn — attach to the class.
            cls_qname = "::".join([p for p in ns if p] + qual)
            alt = qual[-1]
            if cls_qname not in self.sm.classes:
                for cq in self.sm.classes:
                    if cq == alt or cq.endswith("::" + alt):
                        cls_qname = cq
                        break
        parts = [p for p in ns if p]
        if cls is None and qual:
            parts += qual
        elif cls is not None:
            pass  # class name already folded into cls.qname
        qname = (cls_qname + "::" + name) if cls_qname else \
            "::".join(parts + [name])

        fn = Function(qname=qname, name=name, cls=cls_qname, file=self.rel,
                      line=name_line, annotations=set(annotations))
        param_types = self._param_types(lparen + 1, params_end - 1)
        # Defer the body walk until every file's declaration scope has been
        # parsed: an inline method may use members declared further down
        # its class, and .cpp bodies need headers' class layouts.
        self.pending.append((fn, j + 1, body_end - 1, param_types))
        self.sm.functions.append(fn)
        return body_end

    def _skip_ctor_inits(self, i: int, end: int) -> int:
        """Skip a constructor initializer list; returns index of body '{'."""
        while i < end:
            txt = self.toks[i].text
            if txt == "(":
                i = match_forward(self.toks, i, "(", ")")
            elif txt == "{":
                # `member{...}` initializer or the body itself: the body is
                # preceded by ',' handling — a '{' directly after an
                # identifier is an initializer; after ')' or at list end
                # it is the body. Disambiguate: initializers are always
                # followed by ',' or the body '{'.
                close = match_forward(self.toks, i, "{", "}")
                if close < end and self.toks[close].text == ",":
                    i = close + 1
                    continue
                prev = self.toks[i - 1].text if i > 0 else ""
                if prev in (")", ",", ":") or self.toks[i - 1].kind != "id":
                    return i
                # identifier{...} initializer ending the list: body follows
                i = close
            elif txt == "<":
                i = skip_template_args(self.toks, i)
            elif txt == ";":
                return i
            else:
                i += 1
        return end

    def _param_types(self, i: int, end: int) -> dict[str, str]:
        """Best-effort `name -> type` map for a parameter list span."""
        out: dict[str, str] = {}
        depth = 0
        cur: list[Tok] = []

        def flush() -> None:
            if len(cur) >= 2 and cur[-1].kind == "id" and \
                    cur[-1].text not in KEYWORDS:
                out[cur[-1].text] = _type_of(cur[:-1])
            cur.clear()

        while i < end:
            t = self.toks[i]
            if t.text == "<":
                close = skip_template_args(self.toks, i)
                cur.extend(self.toks[i:close])
                i = close
                continue
            if t.text in ("(", "[", "{"):
                i = match_forward(self.toks, i,
                                  t.text, {"(": ")", "[": "]", "{": "}"}[t.text])
                continue
            if t.text == "," and depth == 0:
                flush()
            elif t.text == "=":
                # default argument: drop the remainder of this parameter
                while i < end and self.toks[i].text != ",":
                    if self.toks[i].text == "<":
                        i = skip_template_args(self.toks, i) - 1
                    i += 1
                flush()
            else:
                cur.append(t)
            i += 1
        flush()
        return out


class BodyAnalyzer:
    """Walks one function body span, attributing evidence to `fn`.

    Nested lambda bodies are analyzed for their own coroutine-ness and
    capture escapes; their allocation sites and calls are attributed to the
    enclosing function (the dominant idiom here is the immediately-invoked
    or locally-called helper lambda)."""

    def __init__(self, fp: FileParser, fn: Function,
                 param_types: dict[str, str]):
        self.fp = fp
        self.toks = fp.toks
        self.fn = fn
        self.local_types: dict[str, str] = dict(param_types)

    # Main walk. `top` is False inside nested lambda bodies (co_* tokens
    # then belong to the lambda, not the function).
    def analyze(self, i: int, end: int, top: bool,
                lam: LambdaSite | None = None) -> None:
        stmt_start = True
        while i < end:
            t = self.toks[i]
            txt = t.text
            if txt in ("co_await", "co_return", "co_yield"):
                if top:
                    self.fn.is_coroutine = True
                elif lam is not None:
                    lam.is_coroutine = True
                if txt == "co_return":
                    self._record_return(i + 1, end)
                i += 1
                stmt_start = False
                continue
            if txt == "return":
                self._record_return(i + 1, end)
                i += 1
                stmt_start = False
                continue
            if txt in ("struct", "class", "union", "enum"):
                i = self._skip_local_type(i, end)
                stmt_start = True
                continue
            if txt in ("static", "thread_local") and stmt_start:
                i = self._record_static_local(i, end)
                stmt_start = True
                continue
            if txt == "for" and i + 1 < end and \
                    self.toks[i + 1].text == "(":
                i = self._analyze_for(i, end, top, lam)
                stmt_start = True
                continue
            if txt == "new":
                i = self._record_new(i, end)
                stmt_start = False
                continue
            if txt == "[" and i > 0 and \
                    (self.toks[i - 1].text in LAMBDA_PRECEDERS or
                     self.toks[i - 1].kind == "punct" and
                     self.toks[i - 1].text in ("&", "*")):
                nxt = self._try_lambda(i, end)
                if nxt is not None:
                    i = nxt
                    stmt_start = False
                    continue
            if t.kind == "id":
                self.fn.idents.add(txt)
                if txt == "function" and i >= 2 and \
                        self.toks[i - 1].text == "::" and \
                        self.toks[i - 2].text == "std" and \
                        i + 1 < end and self.toks[i + 1].text == "<":
                    self.fn.allocs.append(AllocSite(
                        kind="std_function", line=t.line,
                        detail="std::function object in body"))
                elif i + 1 < end and self.toks[i + 1].text == "(" and \
                        txt not in KEYWORDS:
                    self._record_call(i, end)
                elif i + 1 < end and self.toks[i + 1].text == "<" and \
                        txt not in KEYWORDS and not self._is_type_ident(txt):
                    # foo<Args...>(...): call with explicit template args
                    close = skip_template_args(self.toks, i + 1)
                    if close < end and self.toks[close].text == "(":
                        self._record_call(i, end)
                        i = close
                        stmt_start = False
                        continue
                elif i + 1 < end and self.toks[i + 1].text == "<" and \
                        txt not in KEYWORDS and self._is_type_ident(txt):
                    # local declaration with template type: record its type
                    close = skip_template_args(self.toks, i + 1)
                    if close < end and self.toks[close].kind == "id":
                        tname = self.toks[close].text
                        self.local_types[tname] = \
                            _type_of(self.toks[i:close])
                        self._maybe_container_local(tname, t.line,
                                                    self.toks[i:close])
                    i = close
                    stmt_start = False
                    continue
            stmt_start = txt in (";", "{", "}", ":") or \
                (txt == ")" and stmt_start)
            i += 1

    # -- helpers -------------------------------------------------------------

    def _is_type_ident(self, txt: str) -> bool:
        return txt[0].isupper() or txt in CONTAINER_TEMPLATES or txt in (
            "vector", "deque", "list", "array", "span", "optional",
            "unique_ptr", "shared_ptr", "pair", "tuple", "basic_string")

    def _maybe_container_local(self, name: str, line: int,
                               type_toks: list[Tok]) -> None:
        type_str = _type_of(type_toks)
        tmpl = _container_template(type_str)
        if tmpl:
            key = _key_of(type_str)
            self.fp.sm.containers.append(ContainerDecl(
                name=name, file=self.fp.rel, line=line, type_str=type_str,
                template=tmpl, key_type=key, ptr_key=_is_ptr_key(key),
                owner=self.fn.qname))

    def _record_return(self, i: int, end: int) -> None:
        depth = 0
        while i < end:
            t = self.toks[i]
            if t.text in ("(", "[", "{"):
                depth += 1
            elif t.text in (")", "]", "}"):
                depth -= 1
            elif t.text == ";" and depth <= 0:
                return
            elif t.kind == "id" and t.text not in KEYWORDS:
                self.fn.returned_idents.add(t.text)
            i += 1

    def _skip_local_type(self, i: int, end: int) -> int:
        j = i
        while j < end and self.toks[j].text not in ("{", ";", ":", "("):
            j += 1
        if j < end and self.toks[j].text == ":":      # base clause or label
            while j < end and self.toks[j].text not in ("{", ";"):
                j += 1
        if j < end and self.toks[j].text == "{":
            j = match_forward(self.toks, j, "{", "}")
        return self.fp._skip_past(j, end, ";") if j < end else end

    def _record_static_local(self, i: int, end: int) -> int:
        specs = {self.toks[i].text}
        j = i + 1
        name = ""
        line = self.toks[i].line
        type_toks: list[Tok] = []
        while j < end and self.toks[j].text not in (";", "=", "{", "("):
            t = self.toks[j]
            if t.text in SPECIFIERS:
                specs.add(t.text)
            elif t.text == "<":
                close = skip_template_args(self.toks, j)
                type_toks.extend(self.toks[j:close])
                j = close
                continue
            elif t.kind == "id" and t.text not in KEYWORDS:
                if name:
                    type_toks.append(Tok("id", name, line))
                name = t.text
                line = t.line
            else:
                type_toks.append(t)
            j += 1
        if name:
            is_const = "const" in specs or "constexpr" in specs
            kind = "thread_local" if "thread_local" in specs \
                else "local_static"
            sv = StaticVar(name=name,
                           qname=self.fn.qname + "::" + name,
                           file=self.fp.rel, line=line, kind=kind,
                           type_str=_type_of(type_toks), is_const=is_const,
                           owner_function=self.fn.qname)
            self.fn.static_locals.append(sv)
            self.fp.sm.statics.append(sv)
            self.local_types[name] = _type_of(type_toks)
        return self.fp._skip_past(j, end, ";")

    def _record_new(self, i: int, end: int) -> int:
        prev = self.toks[i - 1].text if i > 0 else ""
        nxt = self.toks[i + 1].text if i + 1 < end else ""
        line = self.toks[i].line
        if prev == "operator":
            # `::operator new(size)` raw-allocation call — an alloc site.
            # (`static void* operator new(...)` *definitions* come through
            # _parse_declaration, not here.)
            if nxt == "(":
                self.fn.allocs.append(AllocSite(
                    kind="new", line=line, detail="operator new call"))
            return i + 1
        if nxt == "(":
            # Placement new: constructs, does not allocate.
            return match_forward(self.toks, i + 1, "(", ")")
        self.fn.allocs.append(AllocSite(kind="new", line=line,
                                        detail="new expression"))
        return i + 1

    def _receiver_chain(self, i: int) -> str:
        """Walk back from the callee identifier over `a.b->c` chains."""
        parts: list[str] = []
        j = i - 1
        while j > 0:
            sep = self.toks[j].text
            if sep in (".", "->"):
                if self.toks[j - 1].kind == "id":
                    parts.append(self.toks[j - 1].text)
                    j -= 2
                    continue
                if self.toks[j - 1].text in (")", "]"):
                    parts.append("()")
                    break
            break
        return ".".join(reversed(parts))

    def _receiver_type(self, receiver: str) -> str:
        """Resolved type of a receiver chain like 'f.rx' ('' if unknown)."""
        parts = [p for p in receiver.split(".") if p and p != "()"]
        if not parts:
            return ""
        ty = self._resolve_type(parts[0])
        if len(parts) > 1 and ty:
            leaf = self._resolve_member_through(ty, parts[1:])
            return leaf
        return ty

    def _record_call(self, i: int, end: int) -> None:
        name = self.toks[i].text
        line = self.toks[i].line
        prev = self.toks[i - 1].text if i > 0 else ""
        qualifier = ""
        receiver = ""
        if prev == "::" and i >= 2 and self.toks[i - 2].kind == "id":
            qualifier = self.toks[i - 2].text
            if qualifier == "std":
                qualifier = "std"
        elif prev in (".", "->"):
            receiver = self._receiver_chain(i)
        if name in ALLOC_CALLS and qualifier in ("", "std"):
            self.fn.allocs.append(AllocSite(kind=ALLOC_CALLS[name],
                                            line=line, detail=name))
            return
        if name in GROWTH_METHODS and receiver:
            ty = self._receiver_type(receiver)
            is_container = any(h in ty for h in CONTAINER_TYPE_HINTS)
            if is_container or (not ty and name in STRONG_GROWTH):
                self.fn.allocs.append(AllocSite(
                    kind="growth:" + name, line=line,
                    detail=receiver + "." + name + "(...)"))
            # fall through: it is also a call site (for sink analysis)
        self.fn.calls.append(CallSite(name=name, line=line,
                                      qualifier=qualifier,
                                      receiver=receiver))

    # -- for loops -----------------------------------------------------------

    def _analyze_for(self, i: int, end: int, top: bool,
                     lam: LambdaSite | None) -> int:
        lparen = i + 1
        rparen = match_forward(self.toks, lparen, "(", ")") - 1
        # Range-for: a ':' at paren depth 1 that is not '::' and not inside
        # a nested bracket.
        colon = -1
        depth = 0
        j = lparen + 1
        semis = 0
        while j < rparen:
            t = self.toks[j].text
            if t in ("(", "[", "{"):
                depth += 1
            elif t in (")", "]", "}"):
                depth -= 1
            elif t == ";" and depth == 0:
                semis += 1
            elif t == ":" and depth == 0 and colon == -1:
                colon = j
            j += 1
        iterable_toks: list[Tok] = []
        if colon != -1 and semis == 0:
            iterable_toks = self.toks[colon + 1:rparen]
        else:
            # Classic loop: catch `it = X.begin()` iterator sweeps.
            for k in range(lparen + 1, rparen - 2):
                if self.toks[k].text in ("begin", "cbegin") and \
                        self.toks[k + 1].text == "(" and \
                        self.toks[k - 1].text in (".", "->"):
                    iterable_toks = [self.toks[k - 2]]
                    break
        body_start = rparen + 1
        if body_start < end and self.toks[body_start].text == "{":
            body_end = match_forward(self.toks, body_start, "{", "}")
            inner = (body_start + 1, body_end - 1)
        else:
            body_end = self.fp._skip_past(body_start, end, ";")
            inner = (body_start, body_end)

        if iterable_toks:
            expr = "".join(t.text for t in iterable_toks)
            loop = LoopSite(line=self.toks[i].line, iterable=expr)
            self._type_loop(loop, iterable_toks)
            self._scan_loop_body(loop, inner[0], inner[1])
            self.fn.loops.append(loop)
        # The body still needs the ordinary walk (nested loops, calls...).
        self.analyze(inner[0], inner[1], top, lam)
        return body_end

    def _type_loop(self, loop: LoopSite, toks: list[Tok]) -> None:
        expr_ids = [t.text for t in toks if t.kind == "id"]
        text = "".join(t.text for t in toks)
        if "unordered_" in text:
            loop.unordered = True
            loop.iterable_type = text
            return
        if not expr_ids:
            return
        base = expr_ids[0]
        ty = self._resolve_type(base)
        # `a.b` chains: try the leaf member through the base's class.
        if len(expr_ids) > 1:
            leaf_ty = self._resolve_member_through(ty, expr_ids[1:])
            if leaf_ty:
                ty = leaf_ty
        if ty:
            loop.iterable_type = ty
            loop.unordered = "unordered_" in ty

    def _resolve_type(self, name: str) -> str:
        if name in self.local_types:
            return self.local_types[name]
        cls = self.fp.sm.classes.get(self.fn.cls)
        seen = set()
        while cls is not None and cls.qname not in seen:
            seen.add(cls.qname)
            if name in cls.member_types:
                return cls.member_types[name]
            nxt = None
            for b in cls.bases:
                for cq, ci in self.fp.sm.classes.items():
                    if cq == b or cq.endswith("::" + b):
                        nxt = ci
                        break
                if nxt:
                    break
            cls = nxt
        return ""

    def _resolve_member_through(self, base_type: str,
                                members: list[str]) -> str:
        ty = base_type
        for m in members:
            found = ""
            for cq, ci in self.fp.sm.classes.items():
                short = cq.rsplit("::", 1)[-1]
                if short and short in ty and m in ci.member_types:
                    found = ci.member_types[m]
                    break
            if not found:
                return ""
            ty = found
        return ty

    def _scan_loop_body(self, loop: LoopSite, i: int, end: int) -> None:
        depth = 0
        while i < end:
            t = self.toks[i]
            txt = t.text
            if txt in ("(", "[", "{"):
                depth += 1
            elif txt in (")", "]", "}"):
                depth -= 1
            elif txt == "break" and depth == 0:
                loop.has_break = True
            elif txt == "return" or txt == "co_return":
                loop.has_return = True
            elif t.kind == "id" and txt not in KEYWORDS:
                nxt = self.toks[i + 1].text if i + 1 < end else ""
                prev = self.toks[i - 1].text if i > 0 else ""
                wrote = False
                if nxt in ("=", "+=", "-=", "*=", "/=", "%=", "&=", "|=",
                           "^=", "<<=", ">>=", "++", "--"):
                    wrote = True
                elif prev in ("++", "--"):
                    wrote = True
                if wrote:
                    # walk back over `a.b->c[i]` to the base identifier
                    base = txt
                    j = i
                    while j >= 2 and self.toks[j - 1].text in (".", "->") \
                            and self.toks[j - 2].kind == "id":
                        base = self.toks[j - 2].text
                        j -= 2
                    if self._is_nonlocal(base):
                        loop.writes_nonlocal.append(base)
                    else:
                        loop.wrote_locals.add(base)
                if nxt == "(" and txt in MUTATING_SINKS and prev in (
                        ".", "->"):
                    recv = self._receiver_chain(i)
                    base = recv.split(".")[0] if recv else ""
                    if base and self._is_nonlocal(base):
                        loop.sink_calls.append(recv + "." + txt)
            i += 1

    def _is_nonlocal(self, base: str) -> bool:
        if base == "this":
            return True
        if base in self.local_types:
            return False
        # Codebase convention: members end in '_'; also consult the class.
        if base.endswith("_"):
            return True
        cls = self.fp.sm.classes.get(self.fn.cls)
        if cls and base in cls.member_types:
            return True
        return any(sv.name == base and not sv.is_const
                   for sv in self.fp.sm.statics)

    # -- lambdas -------------------------------------------------------------

    def _try_lambda(self, i: int, end: int) -> int | None:
        close = match_forward(self.toks, i, "[", "]")
        if close > end:
            return None
        captures = self.toks[i + 1:close - 1]
        j = close
        if j < end and self.toks[j].text == "<":       # template lambda
            j = skip_template_args(self.toks, j)
        if j < end and self.toks[j].text == "(":
            j = match_forward(self.toks, j, "(", ")")
        # specifiers / trailing return type up to the body
        guard = 0
        while j < end and self.toks[j].text != "{":
            txt = self.toks[j].text
            if txt in (";", ")", "]", ",", "=", "}"):
                return None                            # subscript, not lambda
            if txt == "<":
                j = skip_template_args(self.toks, j)
                continue
            if txt == "(":
                j = match_forward(self.toks, j, "(", ")")
                continue
            j += 1
            guard += 1
            if guard > 32:
                return None
        if j >= end:
            return None
        body_end = match_forward(self.toks, j, "{", "}")
        cap_text = " ".join(t.text for t in captures)
        by_ref = any(t.text == "&" for t in captures)
        lam = LambdaSite(line=self.toks[i].line, captures=cap_text,
                         by_ref=by_ref)
        # Analyze the body: attributes co_* to the lambda, allocations and
        # calls to the enclosing function.
        self.analyze(j + 1, body_end - 1, top=False, lam=lam)
        lam.usage = self._lambda_usage(i, body_end, end)
        self.fn.lambdas.append(lam)
        return body_end

    def _lambda_usage(self, intro: int, body_end: int, end: int) -> str:
        prev = self.toks[intro - 1].text if intro > 0 else ""
        prev2 = self.toks[intro - 2].text if intro > 1 else ""
        nxt = self.toks[body_end].text if body_end < end else ""
        if prev == "co_await":
            return "awaited_in_place"
        if nxt == "(":
            return "immediate_invoke"
        if prev == "(" and intro >= 2:
            callee = self.toks[intro - 2]
            if callee.kind == "id":
                if callee.text == "run":
                    return "run_arg"
                return "arg:" + callee.text
        if prev == ",":
            # argument of some call: find the callee by walking back to the
            # unmatched '(' and taking the identifier before it.
            depth = 0
            j = intro - 1
            while j > 0:
                t = self.toks[j].text
                if t in (")", "]", "}"):
                    depth += 1
                elif t in ("(", "[", "{"):
                    depth -= 1
                    if depth < 0:
                        callee = self.toks[j - 1]
                        if callee.kind == "id":
                            if callee.text == "run":
                                return "run_arg"
                            return "arg:" + callee.text
                        break
                j -= 1
            return "arg:?"
        if prev == "=" and prev2 and self.toks[intro - 2].kind == "id":
            target = self.toks[intro - 2].text
            if intro >= 3 and self.toks[intro - 3].text == "auto":
                return "named:" + target
            return "assigned:" + target
        if prev in ("return", "co_return"):
            return "returned"
        return "unknown"


def parse_files(paths: list[tuple[Path, str]]) -> SourceModel:
    """Parse (path, display-relative-name) pairs into one SourceModel.

    Two passes: headers first so class layouts (member types, bases) are
    known when .cpp bodies resolve loop iterables and receivers."""
    sm = SourceModel(frontend="fallback")
    ordered = sorted(paths, key=lambda pr: (pr[0].suffix not in
                                            (".hpp", ".h"), pr[1]))
    parsers = []
    for path, rel in ordered:
        fp = FileParser(path, rel, sm)
        parsers.append(fp)
        sm.files.append(rel)
    for fp in parsers:
        fp.parse()
    for fp in parsers:
        for fn, start, end, params in fp.pending:
            BodyAnalyzer(fp, fn, params).analyze(start, end, top=True)
    return sm
