"""Output: human-readable findings, --findings-json for the fixture
driver, and simcheck_state.json (the PDES shared-state worklist)."""

from __future__ import annotations

import json
from pathlib import Path

from .model import Finding


def render_text(findings: list[Finding], frontend: str,
                n_files: int, n_functions: int) -> str:
    lines = [f"simcheck: frontend={frontend} files={n_files} "
             f"functions={n_functions}"]
    errors = [f for f in findings if f.severity == "error"]
    infos = [f for f in findings if f.severity != "error"]
    for f in errors:
        lines.append(f"{f.file}:{f.line}: error: [{f.rule}] {f.message}")
        if f.chain:
            lines.append(f"    via: {f.chain}")
    for f in infos:
        lines.append(f"{f.file}:{f.line}: info: [{f.rule}] {f.message}")
    lines.append(f"simcheck: {len(errors)} error(s), "
                 f"{len(infos)} info note(s)")
    return "\n".join(lines)


def findings_json(findings: list[Finding]) -> str:
    return json.dumps([{
        "rule": f.rule, "file": f.file, "line": f.line,
        "severity": f.severity, "message": f.message, "chain": f.chain,
    } for f in findings], indent=2) + "\n"


def write_state_json(path: Path, inventory: list[dict], frontend: str,
                     hot_roots: list[str],
                     findings: list[Finding] | None = None) -> None:
    pdes = [f for f in (findings or []) if f.rule == "pdes-static"]
    gating = sum(1 for f in pdes if f.severity == "error")
    doc = {
        "schema": "simcheck_state/2",
        "frontend": frontend,
        "hot_roots": hot_roots,
        "statics": inventory,
        "summary": {
            "total": len(inventory),
            "mutable_shared": sum(1 for s in inventory
                                  if s["class"] == "mutable-shared"),
            "per_thread": sum(1 for s in inventory
                              if s["class"] == "per-thread"),
            "const_after_init": sum(1 for s in inventory
                                    if s["class"] == "const-after-init"),
            "allowed": sum(1 for s in inventory if s.get("allowed")),
            "gating": sum(1 for s in inventory if s.get("gating")),
        },
        # The gate simcheck_src enforces: fail iff a mutable shared
        # static is reachable from an event handler and not annotated.
        "verdict": {
            "rule": "pdes-static",
            "status": "fail" if gating else "pass",
            "gating_findings": gating,
            "advisory_findings": len(pdes) - gating,
        },
    }
    path.write_text(json.dumps(doc, indent=2) + "\n", encoding="utf-8")
