"""The four rule families, evaluated over a SourceModel.

Every rule fires on positive evidence only; suppression is per-line via
`// simcheck-allow: <rule>` (same line or the line above, mirroring
simlint). Severity 'info' findings are reported and land in
simcheck_state.json but never affect the exit status."""

from __future__ import annotations

import re

from .model import Finding, Function, SourceModel

# Functions that anchor the simulator's per-event hot paths: the MsgFlow
# packet machine, the fault injector's verdict paths, and the engine's
# dispatch loop. Matched against Function.qname.
DEFAULT_HOT_ROOTS = [
    r"NetFabric::(flow_step|deliver|lose_packet|arm_rto|resend_lost|"
    r"fail_flow|rto_delay|replay_flow|maybe_release|release_flow)$",
    # Split-flow wire handlers: these run on the RECEIVING partition's
    # engine thread (dispatched by FabricExecutor), so any static they
    # reach is shared across partition threads, not just across engines.
    r"NetFabric::(wire_handle|wire_open|wire_enter|wire_loss|wire_land|"
    r"wire_close|launch_boundary_packet|finish_boundary_delivery)$",
    r"FabricExecutor::(dispatch|deliver_batch|drain|loop)$",
    r"MsgFlow::thunk$",
    r"Injector::(packet_verdict|reg_should_fail)$",
    r"Engine::step$",
    # Fail-stop degradation fast path: once a link is learned dead every
    # later message on it terminates through these per-message — they are
    # as hot as delivery under a fail-stop plan. (learn_link_dead and the
    # fabrics' degrade_delay overrides are reached from fail_flow /
    # sender_loop and covered transitively.)
    r"NetFabric::(abort_degraded|learn_link_dead|link_known_dead)$",
    r"(IbFabric|GmFabric|ElanFabric)::degrade_delay$",
]

# Callees that defer their lambda argument beyond the current frame — a
# by-reference coroutine lambda handed to one of these escapes its scope.
# Engine::run is NOT here: run() drains the simulation synchronously, so
# the caller's frame outlives every event it schedules.
DEFERRING_CALLEES = {
    "spawn", "at", "at_cancellable", "schedule", "post", "defer",
    "enqueue", "submit", "start", "later",
}

# Ambiguity cap for name-only call resolution: beyond this many same-name
# candidates we treat the call as unresolvable rather than explode the
# graph with false edges.
MAX_CANDIDATES = 8

STD_NOISE = frozenset({
    "move", "forward", "swap", "get", "min", "max", "abs", "size",
    "begin", "end", "cbegin", "cend", "data", "empty", "find", "count",
    "clear", "front", "back", "at", "to_string", "sort", "stable_sort",
    "tie", "exchange", "declval",
})


class CallGraph:
    def __init__(self, sm: SourceModel):
        self.sm = sm
        self.by_name: dict[str, list[Function]] = {}
        self.by_cls_name: dict[tuple[str, str], list[Function]] = {}
        for fn in sm.functions:
            self.by_name.setdefault(fn.name, []).append(fn)
            if fn.cls:
                short = fn.cls.rsplit("::", 1)[-1]
                self.by_cls_name.setdefault((short, fn.name),
                                            []).append(fn)
        self._edges: dict[int, list[Function]] = {}

    def _receiver_class(self, caller: Function, base: str) -> str:
        """Short class name of a receiver expression base, if derivable."""
        if base in ("this", ""):
            return caller.cls.rsplit("::", 1)[-1] if caller.cls else ""
        cls = self.sm.classes.get(caller.cls)
        ty = ""
        if cls and base in cls.member_types:
            ty = cls.member_types[base]
        if not ty:
            return ""
        for (short, _), _fns in self.by_cls_name.items():
            if re.search(r"\b" + re.escape(short) + r"\b", ty):
                return short
        return ""

    def _derived_of(self, short: str) -> list[str]:
        out = []
        for cq, ci in self.sm.classes.items():
            if short in ci.bases:
                out.append(cq.rsplit("::", 1)[-1])
        return out

    def callees(self, fn: Function) -> list[Function]:
        # keyed by object identity: overload sets share a qname
        if id(fn) in self._edges:
            return self._edges[id(fn)]
        out: list[Function] = []
        seen: set[int] = set()

        def add(fns: list[Function]) -> None:
            for f in fns:
                if id(f) not in seen:
                    seen.add(id(f))
                    out.append(f)

        for cs in fn.calls:
            if cs.qualifier == "std":
                continue
            resolved = False
            if cs.qualifier:
                key = (cs.qualifier, cs.name)
                if key in self.by_cls_name:
                    add(self.by_cls_name[key])
                    resolved = True
            if not resolved and cs.receiver:
                base = cs.receiver.split(".")[0]
                short = self._receiver_class(fn, base)
                if short:
                    hit = self.by_cls_name.get((short, cs.name))
                    if hit:
                        add(hit)
                        resolved = True
                    # virtual dispatch: overriders in derived classes
                    for d in self._derived_of(short):
                        dhit = self.by_cls_name.get((d, cs.name))
                        if dhit:
                            add(dhit)
                            resolved = True
            if not resolved and cs.receiver in ("", "this") and fn.cls:
                short = fn.cls.rsplit("::", 1)[-1]
                hit = self.by_cls_name.get((short, cs.name))
                if hit:
                    add(hit)
                    resolved = True
            if not resolved and cs.name not in STD_NOISE:
                # Name-only fallback, denied for std-ish names (.at(),
                # .find(), ...) where receiver typing failed — a wrong
                # edge there would drag Engine::at into every vector.
                cands = self.by_name.get(cs.name, [])
                if 0 < len(cands) <= MAX_CANDIDATES:
                    add(cands)
        self._edges[id(fn)] = out
        return out

    def reachable(self, root: Function) -> list[Function]:
        """root plus everything transitively callable from it (DFS order,
        deterministic)."""
        seen: set[int] = set()
        order: list[Function] = []
        stack = [root]
        while stack:
            f = stack.pop()
            if id(f) in seen:
                continue
            seen.add(id(f))
            order.append(f)
            for c in reversed(self.callees(f)):
                if id(c) not in seen:
                    stack.append(c)
        return order


# -- rule 1: pointer-keyed containers ---------------------------------------

def rule_ptr_key(sm: SourceModel) -> list[Finding]:
    out = []
    for c in sm.containers:
        if not c.ptr_key:
            continue
        if sm.allowed("ptr-key", c.file, c.line):
            continue
        ordered = "unordered" not in c.template
        how = ("iteration order follows host pointer values"
               if ordered else
               "hashing host pointer values makes bucket order, rehash "
               "points and therefore iteration order address-dependent")
        out.append(Finding(
            rule="ptr-key", file=c.file, line=c.line,
            message=f"std::{c.template} '{c.name}' keyed on pointer type "
                    f"'{c.key_type}': {how}. Key on a stable id "
                    f"(slot index, rank, canonical u64) instead.",
        ))
    return out


# -- rule 2: unordered iteration leaking order ------------------------------

def _loop_leak(fn: Function, loop) -> str:
    if loop.writes_nonlocal:
        return ("writes non-local state "
                f"({', '.join(sorted(set(loop.writes_nonlocal))[:3])})")
    if loop.sink_calls:
        return f"calls mutating sink ({loop.sink_calls[0]})"
    if loop.has_break or loop.has_return:
        return "exits early (break/return), so the visit order picks "\
               "the result"
    leaked = sorted(loop.wrote_locals & fn.returned_idents)
    if leaked:
        return (f"writes local '{leaked[0]}' that flows into the return "
                "value")
    return ""


def rule_unordered_iter(sm: SourceModel) -> list[Finding]:
    out = []
    for fn in sm.functions:
        for loop in fn.loops:
            if not loop.unordered:
                continue
            leak = _loop_leak(fn, loop)
            if not leak:
                continue
            if sm.allowed("unordered-iter", fn.file, loop.line):
                continue
            out.append(Finding(
                rule="unordered-iter", file=fn.file, line=loop.line,
                message=f"{fn.qname}: iterates unordered container "
                        f"'{loop.iterable}' and {leak}; visit order is "
                        "host-hash-dependent. Iterate an ordered view or "
                        "make the body order-insensitive.",
            ))
    return out


# -- rule 3: hot-path allocation proof --------------------------------------

ALLOC_DESC = {
    "new": "operator new", "make_unique": "std::make_unique",
    "make_shared": "std::make_shared", "malloc": "malloc-family call",
    "std_function": "std::function construction",
}


def _alloc_desc(kind: str) -> str:
    if kind.startswith("growth:"):
        return f"container growth ({kind.split(':', 1)[1]})"
    return ALLOC_DESC.get(kind, kind)


def rule_hot_alloc(sm: SourceModel,
                   hot_roots: list[str] | None = None) -> list[Finding]:
    pats = [re.compile(p) for p in (hot_roots or DEFAULT_HOT_ROOTS)]
    cg = CallGraph(sm)
    roots = [f for f in sm.functions
             if any(p.search(f.qname) for p in pats)]
    out: list[Finding] = []
    flagged: set[str] = set()
    # BFS per root keeping the discovery chain for the report.
    for root in sorted(roots, key=lambda f: f.qname):
        chain: dict[int, str] = {id(root): root.qname}
        work = [root]
        seen = {id(root)}
        while work:
            f = work.pop(0)
            if "MNS_HOT" not in f.annotations:
                for a in f.allocs:
                    if sm.allowed("hot-alloc", f.file, a.line):
                        continue
                    key = f"{f.qname}:{a.line}"
                    if key in flagged:
                        continue
                    flagged.add(key)
                    out.append(Finding(
                        rule="hot-alloc", file=f.file, line=a.line,
                        message=f"{f.qname}: {_alloc_desc(a.kind)} "
                                f"({a.detail}) on a hot path. Pool it, "
                                "pre-reserve it, or annotate the audited "
                                "boundary MNS_HOT.",
                        chain=chain[id(f)]))
            for c in cg.callees(f):
                if id(c) not in seen:
                    seen.add(id(c))
                    chain[id(c)] = chain[id(f)] + " -> " + c.qname
                    work.append(c)
    return out


# -- rule 4 (upgraded simlint rule): coroutine ref-capture escape -----------

def _escapes(usage: str) -> str:
    """Non-empty reason when a lambda usage escapes the current frame."""
    if usage == "returned":
        return "is returned from the enclosing function"
    if usage.startswith("arg:"):
        callee = usage.split(":", 1)[1]
        if callee in DEFERRING_CALLEES:
            return f"is passed to {callee}(), which defers it beyond "\
                   "the frame"
    if usage.startswith("assigned:"):
        target = usage.split(":", 1)[1]
        if target.endswith("_"):
            return f"is stored into member '{target}'"
    return ""


def rule_coro_ref_escape(sm: SourceModel) -> list[Finding]:
    out = []
    for fn in sm.functions:
        for lam in fn.lambdas:
            if not (lam.by_ref and lam.is_coroutine):
                continue
            why = _escapes(lam.usage)
            if not why:
                continue
            if sm.allowed("coro-ref-escape", fn.file, lam.line):
                continue
            out.append(Finding(
                rule="coro-ref-escape", file=fn.file, line=lam.line,
                message=f"{fn.qname}: coroutine lambda captures by "
                        f"reference [{lam.captures}] and {why}; the "
                        "frame dies at the first suspension point. "
                        "Capture by value or pass state as parameters.",
            ))
    return out


# -- rule 5: PDES-readiness static audit ------------------------------------

def pdes_audit(sm: SourceModel,
               hot_roots: list[str] | None = None
               ) -> tuple[list[Finding], list[dict]]:
    """Findings for mutable shared statics + the full state inventory
    (for simcheck_state.json), each entry with the event-handler roots
    that can reach it."""
    pats = [re.compile(p) for p in (hot_roots or DEFAULT_HOT_ROOTS)]
    cg = CallGraph(sm)
    roots = sorted((f for f in sm.functions
                    if any(p.search(f.qname) for p in pats)),
                   key=lambda f: f.qname)
    reach = {r.qname: cg.reachable(r) for r in roots}

    findings: list[Finding] = []
    inventory: list[dict] = []
    seen_keys: set[tuple] = set()
    for sv in sorted(sm.statics, key=lambda s: (s.file, s.line, s.qname)):
        key = (sv.file, sv.line, sv.qname)
        if key in seen_keys:
            continue
        seen_keys.add(key)
        reached_by = []
        for rq, fns in sorted(reach.items()):
            for f in fns:
                hits = (f.qname == sv.owner_function or
                        sv.name in f.idents)
                if hits:
                    reached_by.append(rq)
                    break
        if sv.is_const:
            cls = "const-after-init"
            sev = "info"
        elif sv.kind == "thread_local":
            cls = "per-thread"
            sev = "info"
        else:
            cls = "mutable-shared"
            sev = "error"
        allowed = sm.allowed("pdes-state", sv.file, sv.line)
        # Gating = the PDES hazard is live: a mutable shared static an
        # event handler can actually reach, with no allow annotation.
        gating = (cls == "mutable-shared" and bool(reached_by)
                  and not allowed)
        inventory.append({
            "name": sv.qname, "file": sv.file, "line": sv.line,
            "kind": sv.kind, "type": sv.type_str, "class": cls,
            "reached_by": reached_by,
            "allowed": allowed,
            "gating": gating,
        })
        if allowed:
            continue
        if cls == "mutable-shared":
            if reached_by:
                findings.append(Finding(
                    rule="pdes-static", file=sv.file, line=sv.line,
                    message=f"mutable {sv.kind.replace('_', ' ')} "
                            f"'{sv.qname}' is shared sim state reachable "
                            "from an event handler; a partitioned (PDES) "
                            "run would race or diverge on it. Move it "
                            "into an engine-owned object, make it const "
                            "or thread_local, or annotate the line above "
                            "with 'simcheck-allow: pdes-state' and a "
                            "justification.",
                    chain=", ".join(reached_by)))
            else:
                findings.append(Finding(
                    rule="pdes-static", file=sv.file, line=sv.line,
                    severity="info",
                    message=f"mutable {sv.kind.replace('_', ' ')} "
                            f"'{sv.qname}' is shared state no event "
                            "handler currently reaches — inventory only, "
                            "but it becomes a gating PDES hazard the "
                            "moment a handler path touches it.",
                    chain=""))
        elif cls == "per-thread":
            findings.append(Finding(
                rule="pdes-static", file=sv.file, line=sv.line,
                severity="info",
                message=f"thread_local '{sv.qname}' is PDES-safe by "
                        "partitioning but must stay per-engine if "
                        "engines ever share a thread.",
                chain=", ".join(reached_by)))
    return findings, inventory


def run_all(sm: SourceModel, hot_roots: list[str] | None = None
            ) -> tuple[list[Finding], list[dict]]:
    findings: list[Finding] = []
    findings += rule_ptr_key(sm)
    findings += rule_unordered_iter(sm)
    findings += rule_hot_alloc(sm, hot_roots)
    findings += rule_coro_ref_escape(sm)
    pdes, inventory = pdes_audit(sm, hot_roots)
    findings += pdes
    findings.sort(key=lambda f: (f.file, f.line, f.rule))
    return findings, inventory
