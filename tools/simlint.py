#!/usr/bin/env python3
"""simlint: domain lint for the mpinetsim simulator's library code.

The simulator's contract is determinism: two runs of the same configuration
must produce bit-identical results. That bans whole categories of C++ from
src/ that an ordinary linter would wave through. simlint enforces them
statically:

  wall-clock      no std::chrono::system_clock / steady_clock /
                  high_resolution_clock, time(), gettimeofday(),
                  clock_gettime() — simulated time comes from sim::Engine.
  randomness      no std::random_device, rand(), srand() — all randomness
                  flows through the seeded generators in util/rng.hpp.
  stdout          no std::cout / std::cerr / printf in library code —
                  libraries return data; printing belongs to bench/,
                  examples/, and tools/.
  threading       no std::thread / jthread / async / mutex /
                  condition_variable / atomic / future / barrier / latch /
                  semaphore in simulator code. Parallelism lives ONLY
                  between independent simulations, in src/sweep/ (the one
                  whitelisted directory); a simulation itself is
                  single-threaded by contract, which is what makes runs
                  deterministic and --jobs N bit-identical to --jobs 1.
  fault-alloc     no heap allocation (new / malloc / make_shared /
                  make_unique / std::function) and no <random>
                  distributions in src/fault — the injector's verdict
                  paths run per packet and must stay allocation-free,
                  and libstdc++/libc++ distributions are not bit-portable
                  (determinism would depend on the host toolchain).
  model-alloc     no std::make_shared / std::function in src/model — the
                  message data path is pooled state machines driven by raw
                  EventFn continuations, allocation-free after warm-up.
                  Per-message (never per-packet) closures and control-path
                  setup code carry explicit simlint-allow comments.
  coro-ref-capture  no lambda coroutine that captures by reference and
                  ESCAPES its enclosing scope. The lambda object dies with
                  the scope, but the coroutine frame built from it lives
                  until completion — captured references dangle across the
                  first suspension. Three idioms are provably same-frame
                  and therefore exempt:
                    co_await [&]{ ... }()           (awaited in place)
                    auto f = [&]() -> Task<> {...}; (every use of `f` in
                    co_await f(...);                 the file is awaited)
                    c.run([&](Comm&) -> Task<> {})  (*.run() drives the
                                                     engine synchronously)
                  Anything else — spawn() arguments, returns, stored
                  lambdas — is flagged. Pass state as coroutine parameters
                  instead (the `[](Self& self, ...) -> Task<>` idiom).
                  (tools/simcheck re-checks this same property with scope
                  analysis over the AST; simlint keeps the fast regex
                  version so a bare checkout still gates.)

Suppress a finding with a comment naming the rule, either on the finding's
own line or on the line above it (intervening comment-only lines are
fine — the allow blesses the next code line):
    foo();  // simlint-allow: wall-clock
    // simlint-allow: wall-clock
    foo();
Exit status: 0 clean, 1 findings, 2 usage error.
"""

from __future__ import annotations

import re
import sys
from dataclasses import dataclass, field
from pathlib import Path

EXTENSIONS = {".hpp", ".cpp", ".h", ".cc", ".cxx"}


@dataclass(frozen=True)
class Rule:
    """One pattern rule plus its directory gating.

    only_dirs:   when non-empty, the rule fires only for files whose path
                 contains one of these directory names.
    exempt_dirs: files whose path contains one of these are skipped.
    """
    name: str
    pattern: re.Pattern
    message: str
    only_dirs: frozenset[str] = field(default_factory=frozenset)
    exempt_dirs: frozenset[str] = field(default_factory=frozenset)

    def applies_to(self, path: Path) -> bool:
        parts = set(path.parts)
        if self.only_dirs and not (self.only_dirs & parts):
            return False
        if self.exempt_dirs & parts:
            return False
        return True


PATTERN_RULES = [
    Rule(
        "wall-clock",
        re.compile(
            r"std::chrono::(system_clock|steady_clock|high_resolution_clock)"
            r"|(?<![\w.:>])(gettimeofday|clock_gettime|localtime|gmtime)\s*\("
            r"|(?<![\w.:>])time\s*\(\s*(NULL|nullptr|0)?\s*\)"
        ),
        "wall-clock access in library code; simulated time comes from "
        "sim::Engine::now()",
    ),
    Rule(
        "randomness",
        re.compile(
            r"std::random_device"
            r"|(?<![\w.:>])s?rand\s*\("
        ),
        "unseeded randomness; use the seeded generators in util/rng.hpp",
    ),
    Rule(
        "threading",
        re.compile(
            r"std::(thread|jthread|async|launch|mutex|shared_mutex"
            r"|recursive_mutex|timed_mutex|scoped_lock|lock_guard"
            r"|unique_lock|shared_lock|condition_variable(_any)?"
            r"|atomic\w*|future|shared_future|packaged_task|barrier"
            r"|latch|counting_semaphore|binary_semaphore|stop_token"
            r"|this_thread)\b"
            r"|#\s*include\s*<(thread|atomic|mutex|shared_mutex|future"
            r"|condition_variable|barrier|latch|semaphore|stop_token)>"
        ),
        "threading primitive in simulator code; a simulation is "
        "single-threaded by contract — parallelism belongs between "
        "simulations (src/sweep/) or between conservatively synchronized "
        "partitions (src/sim/pdes/) only",
        # The two places allowed to touch threads: the between-simulations
        # sweep runner, and the conservative PDES executor whose channel /
        # LBTS protocol keeps results bit-identical to sequential (see
        # each header for why determinism survives).
        exempt_dirs=frozenset({"sweep", "pdes"}),
    ),
    Rule(
        "stdout",
        re.compile(
            r"std::(cout|cerr|clog)\b"
            r"|(?<!\w)f?printf\s*\("
            r"|(?<!\w)puts\s*\("
        ),
        "stdout/stderr output in library code; return data and let "
        "bench/examples/tools print",
    ),
    Rule(
        "fault-alloc",
        re.compile(
            r"std::(make_shared|make_unique|function)\b"
            r"|(?<![\w.:>])(malloc|calloc|realloc)\s*\("
            r"|(?<![\w:])new\s+[A-Za-z_:]"
            r"|std::(mt19937(_64)?|default_random_engine|minstd_rand0?"
            r"|uniform_(int|real)_distribution|bernoulli_distribution)\b"
            r"|#\s*include\s*<random>"
        ),
        "heap allocation or non-portable RNG in src/fault; the injector's "
        "verdict paths (packet_verdict, reg_should_fail) are called per "
        "packet and must stay allocation-free, drawing only from the "
        "pre-seeded util/rng.hpp streams sized at construction — "
        "<random> distributions are not bit-portable across standard "
        "libraries and would break cross-platform determinism",
        # The chaos layer: packet_verdict / reg_should_fail sit on the
        # per-packet data path.
        only_dirs=frozenset({"fault"}),
    ),
    Rule(
        "model-alloc",
        re.compile(r"std::(make_shared|function)\b"),
        "type-erased/shared allocation in src/model hot-path code; the "
        "data path runs one pooled state machine per message (raw EventFn "
        "continuations, freelist recycling) — per-message closures or "
        "control-path code must carry an explicit simlint-allow",
        # The machine-model layer only; MPI devices and apps may use
        # type-erased closures freely.
        only_dirs=frozenset({"model"}),
    ),
]

ALLOW_RE = re.compile(r"simlint-allow:\s*([\w-]+)")


def strip_comments_and_strings(text: str) -> tuple[str, dict[int, set[str]]]:
    """Blank out comments, string and char literals (preserving line
    structure) so rules never fire on prose. Returns the stripped text and
    the per-line suppressions harvested from comments.

    A `// simlint-allow: rule` comment suppresses its own line and — so
    the allow can sit on the line above the finding — the next *code*
    line below it. Intervening comment-only lines don't break the chain
    (they are blank after stripping)."""
    out = []
    allows: dict[int, set[str]] = {}
    pending: list[tuple[int, str]] = []  # (comment line, rule) to forward
    i, n = 0, len(text)
    line = 1

    def record_allow(comment: str, line_no: int) -> None:
        for m in ALLOW_RE.finditer(comment):
            allows.setdefault(line_no, set()).add(m.group(1))
            pending.append((line_no, m.group(1)))

    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            j = text.find("\n", i)
            j = n if j == -1 else j
            record_allow(text[i:j], line)
            out.append(" " * (j - i))
            i = j
        elif c == "/" and nxt == "*":
            j = text.find("*/", i + 2)
            j = n if j == -1 else j + 2
            comment = text[i:j]
            end_line = line + comment.count("\n")
            record_allow(comment, end_line)
            out.append("".join(ch if ch == "\n" else " " for ch in comment))
            line = end_line
            i = j
        elif c in "\"'":
            quote = c
            j = i + 1
            while j < n and text[j] != quote:
                j += 2 if text[j] == "\\" else 1
            j = min(j + 1, n)
            literal = text[i:j]
            out.append(quote + "".join(
                ch if ch == "\n" else " " for ch in literal[1:-1]) + quote
                if len(literal) >= 2 else literal)
            line += literal.count("\n")
            i = j
        else:
            if c == "\n":
                line += 1
            out.append(c)
            i += 1

    stripped = "".join(out)
    # Forward each allow to the next code line below it (first line that
    # is non-blank after stripping), so the comment can sit above the
    # finding — including across a run of explanatory comment lines.
    stripped_lines = stripped.split("\n")
    for line_no, rule in pending:
        for below in range(line_no + 1, len(stripped_lines) + 1):
            if stripped_lines[below - 1].strip():
                allows.setdefault(below, set()).add(rule)
                break
    return stripped, allows


LAMBDA_REF_INTRO_RE = re.compile(r"\[[^\[\]]*&[^\[\]]*\]")
LAMBDA_ANY_INTRO_RE = re.compile(r"\[[^\[\]]*\]")
SUSPEND_RE = re.compile(r"\bco_await\b|\bco_yield\b|\bco_return\b")


def lambda_body_span(stripped: str, intro_end: int):
    """Given the index just past a lambda introducer, return the
    [start, end) span of its `{...}` body, or None if this isn't a lambda
    (array subscript, attribute, ...)."""
    i = intro_end
    n = len(stripped)
    while i < n and stripped[i].isspace():
        i += 1
    # Optional template parameter list <...>
    if i < n and stripped[i] == "<":
        depth = 1
        i += 1
        while i < n and depth:
            depth += {"<": 1, ">": -1}.get(stripped[i], 0)
            i += 1
    while i < n and stripped[i].isspace():
        i += 1
    # Optional parameter list (...)
    if i < n and stripped[i] == "(":
        depth = 1
        i += 1
        while i < n and depth:
            depth += {"(": 1, ")": -1}.get(stripped[i], 0)
            i += 1
    # Specifiers / trailing return type up to the body brace.
    j = stripped.find("{", i)
    if j == -1:
        return None
    between = stripped[i:j]
    if ";" in between or ")" in between:
        return None  # not a lambda body (e.g. array subscript expression)
    depth = 1
    k = j + 1
    while k < n and depth:
        depth += {"{": 1, "}": -1}.get(stripped[k], 0)
        k += 1
    return j, k


def blank_nested_lambda_bodies(body: str) -> str:
    """Return `body` with the bodies of nested lambdas replaced by spaces,
    so a suspension point inside a nested lambda isn't attributed to the
    outer one."""
    out = body
    pos = 1  # skip the outer '{'
    while True:
        m = LAMBDA_ANY_INTRO_RE.search(out, pos)
        if not m:
            return out
        span = lambda_body_span(out, m.end())
        if span is None:
            pos = m.end()
            continue
        j, k = span
        out = out[:j] + " " * (k - j) + out[k:]
        pos = k


def is_same_frame_use(stripped: str, intro_start: int, body_end: int) -> bool:
    """True for the three provably same-frame idioms (see module doc):
    immediately co_awaited, named-and-only-awaited, or passed to a
    synchronous `.run(...)` driver."""
    before = stripped[:intro_start]

    # co_await [&]{...}()  — awaited in place.
    if re.search(r"\bco_await\s*$", before):
        return True

    # c.run([&]{...}) / run([&]{...}) — the driver runs the engine to
    # completion before returning, so the enclosing frame outlives the
    # coroutine.
    if re.search(r"\brun\s*\(\s*$", before):
        return True

    # auto name = [&]{...};  with every later use of `name` co_awaited in
    # the declaring frame.
    decl = re.search(r"\bauto\s+(\w+)\s*=\s*$", before)
    if decl:
        name = decl.group(1)
        uses = 0
        for u in re.finditer(rf"\b{re.escape(name)}\b", stripped):
            if decl.start() <= u.start() < body_end:
                continue  # the declaration itself
            if not re.search(r"\bco_await\s*$", stripped[:u.start()]):
                return False  # escapes: stored, passed, spawned, ...
            uses += 1
        return uses > 0
    return False


def find_ref_capture_coroutines(stripped: str):
    """Yield (line, capture) for lambdas that capture by reference, have a
    suspension point in their own body, and escape the enclosing frame."""
    for m in LAMBDA_REF_INTRO_RE.finditer(stripped):
        span = lambda_body_span(stripped, m.end())
        if span is None:
            continue
        j, k = span
        own_body = blank_nested_lambda_bodies(stripped[j:k])
        if not SUSPEND_RE.search(own_body):
            continue
        if is_same_frame_use(stripped, m.start(), k):
            continue
        line = stripped.count("\n", 0, m.start()) + 1
        yield line, m.group(0)


def lint_file(path: Path) -> list[tuple[Path, int, str, str]]:
    text = path.read_text(encoding="utf-8", errors="replace")
    stripped, allows = strip_comments_and_strings(text)
    findings = []

    def allowed(rule: str, line: int) -> bool:
        return rule in allows.get(line, set())

    active = [r for r in PATTERN_RULES if r.applies_to(path)]
    for line_no, line_text in enumerate(stripped.splitlines(), start=1):
        for rule in active:
            if rule.pattern.search(line_text) and \
                    not allowed(rule.name, line_no):
                findings.append((path, line_no, rule.name, rule.message))

    for line_no, capture in find_ref_capture_coroutines(stripped):
        if not allowed("coro-ref-capture", line_no):
            findings.append((
                path, line_no, "coro-ref-capture",
                f"lambda {capture} captures by reference and suspends "
                "(co_await in body): captured references dangle once the "
                "enclosing scope returns; pass state as coroutine "
                "parameters instead",
            ))
    return findings


def main(argv: list[str]) -> int:
    args = [a for a in argv[1:] if not a.startswith("-")]
    if "--help" in argv or "-h" in argv:
        print(__doc__)
        return 0
    if not args:
        print("usage: simlint.py <dir-or-file>...", file=sys.stderr)
        return 2

    files: list[Path] = []
    for arg in args:
        p = Path(arg)
        if p.is_dir():
            files.extend(sorted(
                f for f in p.rglob("*") if f.suffix in EXTENSIONS))
        elif p.is_file():
            files.append(p)
        else:
            print(f"simlint: no such path: {p}", file=sys.stderr)
            return 2

    findings = []
    for f in files:
        findings.extend(lint_file(f))

    for path, line, rule, message in findings:
        print(f"{path}:{line}: [{rule}] {message}")
    summary = (
        f"simlint: {len(findings)} finding(s) in {len(files)} file(s)")
    print(summary, file=sys.stderr if findings else sys.stdout)
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
